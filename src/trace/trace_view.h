// A zero-copy, read-only view over a request trace.
//
// The simulator layers consume TraceView instead of std::vector<Request>, so
// the same hot loop runs over either backing without a deserialization pass:
//
//   * heap backing — strided "columns" pointing into a Trace's AoS Request
//     array (stride = sizeof(Request)); AsRequests() exposes the contiguous
//     array for the fast path;
//   * mmap backing — true SoA columns pointing straight into a v2 trace-cache
//     file (stride = sizeof(field)); the file is never turned into Requests.
//
// Views are cheap to copy; every copy shares the backing storage through a
// type-erased owner handle (the Trace, or the file mapping), so a view keeps
// its data alive. stats() is served from the Trace's cached stats or from the
// v2 file header — never recomputed on the view.
#ifndef SRC_TRACE_TRACE_VIEW_H_
#define SRC_TRACE_TRACE_VIEW_H_

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "src/trace/trace.h"

namespace s3fifo {

class TraceView {
 public:
  // One field's storage: consecutive values `stride` bytes apart. The base
  // pointer is aligned for the field type in both backings (Request members
  // in the heap case, 8-aligned file offsets in the mmap case).
  struct Column {
    const std::byte* base = nullptr;
    size_t stride = 0;
  };

  // All six columns; `next_access` may be null for unannotated traces.
  struct Columns {
    Column id, size, op, tenant, time, next_access;
  };

  TraceView() = default;

  // Borrows `trace` without taking ownership; the caller guarantees the
  // trace outlives the view (the Simulate(const Trace&...) adapters).
  static TraceView Borrow(const Trace& trace) { return FromTraceImpl(&trace, nullptr); }

  // Shares ownership of a heap trace; the view keeps it alive.
  static TraceView FromTrace(std::shared_ptr<const Trace> trace) {
    const Trace* raw = trace.get();
    return FromTraceImpl(raw, std::move(trace));
  }

  // Wraps raw columns (the mmap path — see MapTraceFile in trace_cache.h).
  // `owner` keeps the backing storage mapped for the lifetime of all copies.
  static TraceView FromColumns(Columns columns, size_t num_requests, bool annotated,
                               std::string name, const TraceStats& stats,
                               uint64_t file_fingerprint, std::shared_ptr<const void> owner);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool annotated() const { return annotated_; }
  const std::string& name() const { return name_; }

  // Full-trace statistics: the heap trace's cached stats, or the v2 header
  // snapshot. O(n) only the first time for a heap trace (Trace::Stats()).
  const TraceStats& stats() const { return heap_trace_ != nullptr ? heap_trace_->Stats() : stats_; }

  // The fingerprint recorded in the backing file's header (mmap views only);
  // 0 for heap views. Compare with ComputeFingerprint() to detect corruption.
  uint64_t file_fingerprint() const { return file_fingerprint_; }

  // Order-sensitive digest over (id, size, op) — same definition as
  // Trace::Fingerprint(). One linear pass.
  uint64_t ComputeFingerprint() const;

  uint64_t id(size_t i) const { return Load<uint64_t>(columns_.id, i); }
  uint32_t object_size(size_t i) const { return Load<uint32_t>(columns_.size, i); }
  OpType op(size_t i) const { return static_cast<OpType>(Load<uint8_t>(columns_.op, i)); }
  uint32_t tenant(size_t i) const { return Load<uint32_t>(columns_.tenant, i); }
  uint64_t time(size_t i) const { return Load<uint64_t>(columns_.time, i); }
  uint64_t next_access(size_t i) const {
    return columns_.next_access.base == nullptr ? kNeverAccessed
                                                : Load<uint64_t>(columns_.next_access, i);
  }

  // Materializes one request (gathers from the columns in the mmap case).
  Request At(size_t i) const {
    const Request* aos = AsRequests();
    if (aos != nullptr) {
      return aos[i];
    }
    Request r;
    r.id = id(i);
    r.size = object_size(i);
    r.op = op(i);
    r.tenant = tenant(i);
    r.time = time(i);
    r.next_access = next_access(i);
    return r;
  }

  // Non-null iff the view is backed by a contiguous Request array (heap
  // backing) — the simulators' copy-free fast path.
  const Request* AsRequests() const { return aos_; }

 private:
  static TraceView FromTraceImpl(const Trace* trace, std::shared_ptr<const void> owner);

  template <typename T>
  T Load(const Column& c, size_t i) const {
    return *reinterpret_cast<const T*>(c.base + i * c.stride);
  }

  Columns columns_;
  size_t size_ = 0;
  bool annotated_ = false;
  std::string name_;
  TraceStats stats_;                  // header snapshot (mmap backing)
  const Trace* heap_trace_ = nullptr; // set for heap backing; serves stats()
  const Request* aos_ = nullptr;
  uint64_t file_fingerprint_ = 0;
  std::shared_ptr<const void> owner_;
};

// Copies a view back into an owning AoS Trace (name, annotation flag, and
// every request field). Used by analysis consumers that need a Trace — the
// simulation path never calls this.
Trace MaterializeTrace(const TraceView& view);

}  // namespace s3fifo

#endif  // SRC_TRACE_TRACE_VIEW_H_
