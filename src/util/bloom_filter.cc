#include "src/util/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "src/util/hash.h"

namespace s3fifo {
namespace {

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

}  // namespace

BloomFilter::BloomFilter(uint64_t expected_items, double false_positive_rate) {
  expected_items = std::max<uint64_t>(expected_items, 16);
  const double ln2 = 0.6931471805599453;
  const double bits_needed =
      -static_cast<double>(expected_items) * std::log(false_positive_rate) / (ln2 * ln2);
  const uint64_t num_bits = NextPow2(std::max<uint64_t>(static_cast<uint64_t>(bits_needed), 64));
  bits_.assign(num_bits / 64, 0);
  bit_mask_ = num_bits - 1;
  num_hashes_ = std::clamp(
      static_cast<int>(std::lround(ln2 * static_cast<double>(num_bits) /
                                   static_cast<double>(expected_items))),
      1, 16);
}

uint64_t BloomFilter::BitIndex(uint64_t h1, uint64_t h2, int i) const {
  return (h1 + static_cast<uint64_t>(i) * h2) & bit_mask_;
}

void BloomFilter::Insert(uint64_t id) {
  const uint64_t h1 = HashId(id);
  const uint64_t h2 = HashId2(id) | 1;  // odd, so all strides visit all bits
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = BitIndex(h1, h2, i);
    bits_[bit >> 6] |= 1ULL << (bit & 63);
  }
  ++inserted_;
}

bool BloomFilter::Contains(uint64_t id) const {
  const uint64_t h1 = HashId(id);
  const uint64_t h2 = HashId2(id) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = BitIndex(h1, h2, i);
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

RotatingBloomFilter::RotatingBloomFilter(uint64_t rotate_after, double false_positive_rate)
    : rotate_after_(std::max<uint64_t>(rotate_after, 1)),
      active_(rotate_after_, false_positive_rate),
      previous_(rotate_after_, false_positive_rate) {}

void RotatingBloomFilter::Insert(uint64_t id) {
  if (active_.inserted() >= rotate_after_) {
    std::swap(active_, previous_);
    active_.Clear();
  }
  active_.Insert(id);
}

bool RotatingBloomFilter::Contains(uint64_t id) const {
  return active_.Contains(id) || previous_.Contains(id);
}

void RotatingBloomFilter::Clear() {
  active_.Clear();
  previous_.Clear();
}

}  // namespace s3fifo
