// Bloom filter with k hash functions derived via double hashing, plus a
// rotating variant for bounded-staleness membership (used by B-LRU admission
// and TinyLFU's doorkeeper).
#ifndef SRC_UTIL_BLOOM_FILTER_H_
#define SRC_UTIL_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

namespace s3fifo {

class BloomFilter {
 public:
  // expected_items / false_positive_rate pick the bit count and hash count
  // via the standard optimum (m = -n ln p / ln^2 2, k = m/n ln 2).
  BloomFilter(uint64_t expected_items, double false_positive_rate);

  void Insert(uint64_t id);
  bool Contains(uint64_t id) const;
  void Clear();

  uint64_t inserted() const { return inserted_; }
  uint64_t num_bits() const { return static_cast<uint64_t>(bits_.size()) * 64; }
  int num_hashes() const { return num_hashes_; }

 private:
  uint64_t BitIndex(uint64_t h1, uint64_t h2, int i) const;

  std::vector<uint64_t> bits_;
  uint64_t bit_mask_;  // bits_ holds a power-of-two bit count
  int num_hashes_;
  uint64_t inserted_ = 0;
};

// Two alternating Bloom filters: when the active one has absorbed
// `rotate_after` insertions it becomes the "previous" filter and a cleared
// one takes over. Contains() consults both, so membership is remembered for
// between rotate_after and 2*rotate_after insertions.
class RotatingBloomFilter {
 public:
  RotatingBloomFilter(uint64_t rotate_after, double false_positive_rate);

  void Insert(uint64_t id);
  bool Contains(uint64_t id) const;
  void Clear();

 private:
  uint64_t rotate_after_;
  BloomFilter active_;
  BloomFilter previous_;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_BLOOM_FILTER_H_
