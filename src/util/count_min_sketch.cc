#include "src/util/count_min_sketch.h"

#include <algorithm>

#include "src/util/hash.h"

namespace s3fifo {
namespace {

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

// Per-row hash seeds (arbitrary odd constants).
constexpr uint64_t kRowSeeds[4] = {0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
                                   0x165667b19e3779f9ULL, 0xd6e8feb86659fd93ULL};

}  // namespace

CountMinSketch::CountMinSketch(uint64_t expected_items) {
  width_ = NextPow2(std::max<uint64_t>(expected_items, 16));
  index_mask_ = width_ - 1;
  table_.assign(static_cast<size_t>(kRows) * (width_ / 16), 0);
}

uint64_t CountMinSketch::IndexFor(int row, uint64_t id) const {
  return Mix64(id ^ kRowSeeds[row]) & index_mask_;
}

uint32_t CountMinSketch::CounterAt(int row, uint64_t index) const {
  const uint64_t word = table_[static_cast<uint64_t>(row) * (width_ / 16) + (index >> 4)];
  const int shift = static_cast<int>(index & 15) * 4;
  return static_cast<uint32_t>((word >> shift) & 0xF);
}

void CountMinSketch::SetCounterAt(int row, uint64_t index, uint32_t value) {
  uint64_t& word = table_[static_cast<uint64_t>(row) * (width_ / 16) + (index >> 4)];
  const int shift = static_cast<int>(index & 15) * 4;
  word = (word & ~(0xFULL << shift)) | (static_cast<uint64_t>(value & 0xF) << shift);
}

uint32_t CountMinSketch::Increment(uint64_t id) {
  uint32_t min_after = 15;
  for (int row = 0; row < kRows; ++row) {
    const uint64_t idx = IndexFor(row, id);
    const uint32_t c = CounterAt(row, idx);
    if (c < 15) {
      SetCounterAt(row, idx, c + 1);
    }
    min_after = std::min(min_after, std::min(c + 1, 15u));
  }
  return min_after;
}

uint32_t CountMinSketch::Estimate(uint64_t id) const {
  uint32_t m = 15;
  for (int row = 0; row < kRows; ++row) {
    m = std::min(m, CounterAt(row, IndexFor(row, id)));
  }
  return m;
}

void CountMinSketch::Age() {
  // Halve all 4-bit counters in parallel within each word:
  // (word >> 1) & 0x7777... clears the bit shifted in from the neighbour.
  for (uint64_t& word : table_) {
    word = (word >> 1) & 0x7777777777777777ULL;
  }
}

void CountMinSketch::Clear() { std::fill(table_.begin(), table_.end(), 0); }

}  // namespace s3fifo
