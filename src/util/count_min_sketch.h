// Count-min sketch with 4-bit counters and periodic halving ("aging"), the
// frequency substrate of TinyLFU (Einziger et al., ToS'17).
#ifndef SRC_UTIL_COUNT_MIN_SKETCH_H_
#define SRC_UTIL_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

namespace s3fifo {

class CountMinSketch {
 public:
  // Sized so that ~`expected_items` distinct keys can be tracked with low
  // over-estimation; uses 4 rows of 4-bit counters packed 16 per uint64_t.
  explicit CountMinSketch(uint64_t expected_items);

  // Increments all 4 row counters (saturating at 15). Returns the new
  // estimate.
  uint32_t Increment(uint64_t id);
  // Minimum over the 4 rows; in [0, 15].
  uint32_t Estimate(uint64_t id) const;
  // Halves every counter — TinyLFU's reset/aging operation.
  void Age();
  void Clear();

  uint64_t width() const { return width_; }

 private:
  uint32_t CounterAt(int row, uint64_t index) const;
  void SetCounterAt(int row, uint64_t index, uint32_t value);
  uint64_t IndexFor(int row, uint64_t id) const;

  static constexpr int kRows = 4;
  uint64_t width_;       // counters per row (power of two)
  uint64_t index_mask_;  // width_ - 1
  std::vector<uint64_t> table_;  // kRows * width_/16 words
};

}  // namespace s3fifo

#endif  // SRC_UTIL_COUNT_MIN_SKETCH_H_
