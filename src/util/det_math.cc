#include "src/util/det_math.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace s3fifo {
namespace {

// Split representations of ln(2) and pi/2 (Cody-Waite): the _hi parts have
// trailing zero bits so n * hi is exact for the small n used here.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kInvLn2 = 1.44269504088896338700e+00;
constexpr double kPio2Hi = 1.57079632673412561417e+00;
constexpr double kPio2Lo = 6.07710050630396597660e-11;
constexpr double kPio2Lo2 = 2.02226624879595063154e-21;
constexpr double kTwoOverPi = 6.36619772367581382433e-01;

// Round-to-nearest-integer via the 2^52 trick (deterministic in the default
// rounding mode; |x| must be < 2^51).
double RoundNearest(double x) {
  constexpr double kTwo52 = 4503599627370496.0;
  return x >= 0.0 ? (x + kTwo52) - kTwo52 : (x - kTwo52) + kTwo52;
}

// atanh(s) * 2 for |s| <= (sqrt(2)-1)/(sqrt(2)+1) ~ 0.1716, via the odd
// series 2s * (1 + s^2/3 + s^4/5 + ...). s2 <= 0.0295, so the first dropped
// term s^22/23 is below 6e-18 relative -- under half an ulp of the sum.
double TwoAtanh(double s) {
  const double s2 = s * s;
  const double poly =
      s2 *
      (1.0 / 3.0 +
       s2 * (1.0 / 5.0 +
             s2 * (1.0 / 7.0 +
                   s2 * (1.0 / 9.0 +
                         s2 * (1.0 / 11.0 +
                               s2 * (1.0 / 13.0 +
                                     s2 * (1.0 / 15.0 +
                                           s2 * (1.0 / 17.0 +
                                                 s2 * (1.0 / 19.0 +
                                                       s2 * (1.0 / 21.0))))))))));
  return 2.0 * s + 2.0 * s * poly;
}

// exp(r) - 1 for |r| <= 0.35, Taylor to r^13/13! (last term < 2e-16 of the
// sum; evaluated smallest-first for a stable, fixed operation order).
double ExpSmallM1(double r) {
  constexpr double kInvFact[] = {
      1.0 / 6227020800.0,  // 1/13!
      1.0 / 479001600.0, 1.0 / 39916800.0, 1.0 / 3628800.0, 1.0 / 362880.0,
      1.0 / 40320.0,     1.0 / 5040.0,     1.0 / 720.0,     1.0 / 120.0,
      1.0 / 24.0,        1.0 / 6.0,        1.0 / 2.0,
  };
  double poly = kInvFact[0];
  for (int i = 1; i < 12; ++i) {
    poly = poly * r + kInvFact[i];
  }
  return r + r * r * poly;
}

// sin(r) for |r| <= pi/4 (fdlibm minimax coefficients).
double SinPoly(double r) {
  constexpr double S1 = -1.66666666666666324348e-01;
  constexpr double S2 = 8.33333333332248946124e-03;
  constexpr double S3 = -1.98412698298579493134e-04;
  constexpr double S4 = 2.75573137070700676789e-06;
  constexpr double S5 = -2.50507602534068634195e-08;
  constexpr double S6 = 1.58969099521155010221e-10;
  const double z = r * r;
  const double p = S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)));
  return r + r * z * (S1 + z * p);
}

// cos(r) for |r| <= pi/4 (fdlibm minimax coefficients).
double CosPoly(double r) {
  constexpr double C1 = 4.16666666666666019037e-02;
  constexpr double C2 = -1.38888888888741095749e-03;
  constexpr double C3 = 2.48015872894767294178e-05;
  constexpr double C4 = -2.75573143513906633035e-07;
  constexpr double C5 = 2.08757232129817482790e-09;
  constexpr double C6 = -1.13596475577881948265e-11;
  const double z = r * r;
  const double p = C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6))));
  return 1.0 - 0.5 * z + z * z * p;
}

}  // namespace

double DetLog(double x) {
  if (x <= 0.0) {
    return x == 0.0 ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::quiet_NaN();
  }
  if (x == std::numeric_limits<double>::infinity()) {
    return x;
  }
  uint64_t bits = std::bit_cast<uint64_t>(x);
  int64_t k = 0;
  if (bits < (1ULL << 52)) {  // subnormal: rescale into the normal range
    x *= 18014398509481984.0;  // 2^54
    k -= 54;
    bits = std::bit_cast<uint64_t>(x);
  }
  // Decompose x = 2^k * m with m in [sqrt(1/2), sqrt(2)).
  k += static_cast<int64_t>(bits >> 52) - 1023;
  double m = std::bit_cast<double>((bits & ((1ULL << 52) - 1)) | (1023ULL << 52));
  if (m > 1.4142135623730951) {
    m *= 0.5;  // exact
    k += 1;
  }
  const double s = (m - 1.0) / (m + 1.0);
  return static_cast<double>(k) * kLn2Hi + (TwoAtanh(s) + static_cast<double>(k) * kLn2Lo);
}

double DetExp(double x) {
  if (x != x) {
    return x;
  }
  if (x > 709.78) {
    return std::numeric_limits<double>::infinity();
  }
  if (x < -745.0) {
    return 0.0;
  }
  const double kd = RoundNearest(x * kInvLn2);
  const int64_t k = static_cast<int64_t>(kd);
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  const double er = 1.0 + ExpSmallM1(r);
  // Scale by 2^k in two steps so k near the subnormal boundary stays exact.
  const int64_t k1 = k / 2;
  const int64_t k2 = k - k1;
  const double s1 = std::bit_cast<double>(static_cast<uint64_t>(1023 + k1) << 52);
  const double s2 = std::bit_cast<double>(static_cast<uint64_t>(1023 + k2) << 52);
  return er * s1 * s2;
}

double DetLog1p(double x) {
  if (x > -0.293 && x < 0.414) {  // 1+x within [sqrt(1/2), sqrt(2)): no split needed
    return TwoAtanh(x / (2.0 + x));
  }
  return DetLog(1.0 + x);
}

double DetExpm1(double x) {
  if (x > -0.35 && x < 0.35) {
    return ExpSmallM1(x);
  }
  return DetExp(x) - 1.0;
}

double DetSin(double x) {
  const double nd = RoundNearest(x * kTwoOverPi);
  const int64_t n = static_cast<int64_t>(nd);
  const double r = ((x - nd * kPio2Hi) - nd * kPio2Lo) - nd * kPio2Lo2;
  switch (n & 3) {
    case 0:
      return SinPoly(r);
    case 1:
      return CosPoly(r);
    case 2:
      return -SinPoly(r);
    default:
      return -CosPoly(r);
  }
}

double DetCos(double x) {
  const double nd = RoundNearest(x * kTwoOverPi);
  const int64_t n = static_cast<int64_t>(nd);
  const double r = ((x - nd * kPio2Hi) - nd * kPio2Lo) - nd * kPio2Lo2;
  switch (n & 3) {
    case 0:
      return CosPoly(r);
    case 1:
      return -SinPoly(r);
    case 2:
      return -CosPoly(r);
    default:
      return SinPoly(r);
  }
}

}  // namespace s3fifo
