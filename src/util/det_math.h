// Bit-reproducible elementary functions for trace generation.
//
// libm's log/exp/cos are implementation-defined in their last ulps, so the
// same workload seed can produce different traces under glibc vs musl vs
// libc++'s math. Every sampler on the trace-generation path (zipf rejection
// inversion, lognormal size sampling) therefore goes through these instead:
// they use only IEEE-754 +,-,*,/ and sqrt — all correctly rounded and thus
// identical on every conforming platform — with fixed polynomial
// coefficients, so a seed reproduces the exact same trace everywhere. The
// golden-trace hash test (tests/workload/golden_trace_test.cc) pins this.
//
// Accuracy is ~2 ulp, far below anything a stochastic sampler can observe;
// these are NOT general libm replacements (no errno, no denormal-edge
// guarantees, DetCos/DetSin only accept |x| <= 64).
#ifndef SRC_UTIL_DET_MATH_H_
#define SRC_UTIL_DET_MATH_H_

namespace s3fifo {

// Natural logarithm for x > 0. Returns -HUGE_VAL at 0 and NaN below 0.
double DetLog(double x);

// e^x with saturation to 0 / +inf outside the double range.
double DetExp(double x);

// log(1 + x), accurate near 0 (x > -1).
double DetLog1p(double x);

// e^x - 1, accurate near 0.
double DetExpm1(double x);

// Trigonometric pair for |x| <= 64 (trace generation only ever needs
// [0, 2*pi)); larger arguments are not range-reduced accurately.
double DetCos(double x);
double DetSin(double x);

}  // namespace s3fifo

#endif  // SRC_UTIL_DET_MATH_H_
