// Open-addressing hash map keyed by uint64_t object ids — the request
// hot-path replacement for node-based std::unordered_map in the policies.
//
// Layout: a power-of-two slot array (linear probing, Mix64-hashed, backward-
// shift deletion so no tombstones accumulate) holds {key, index} pairs; the
// values live in a slab pool of fixed-size chunks with a LIFO free list.
// Consequences the policies rely on:
//
//   * value addresses are STABLE — rehashing moves only the slot array, never
//     a value, so intrusive-list hooks embedded in entries stay valid;
//   * lookups touch one contiguous slot array (one cache line for most
//     probes) instead of chasing a bucket list node per hit;
//   * erase returns the slab slot to the free list; the next Emplace reuses
//     it with a freshly value-initialized V.
//
// Not thread-safe. ForEach must not insert or erase.
#ifndef SRC_UTIL_FLAT_MAP_H_
#define SRC_UTIL_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/util/hash.h"

namespace s3fifo {

template <typename V>
class FlatMap {
 public:
  FlatMap() = default;
  ~FlatMap() { Clear(); }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Hints the CPU to pull the probe slot for `key` into cache ahead of a
  // Find/Emplace — the simulators issue this a fixed distance ahead of the
  // request being processed so probe misses overlap. No observable effect.
  void Prefetch(uint64_t key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[Mix64(key) & Mask()]);
    }
#else
    (void)key;
#endif
  }

  V* Find(uint64_t key) {
    const size_t pos = FindSlot(key);
    return pos == kNotFound ? nullptr : EntryAt(slots_[pos].idx);
  }
  const V* Find(uint64_t key) const {
    const size_t pos = FindSlot(key);
    return pos == kNotFound ? nullptr : EntryAt(slots_[pos].idx);
  }
  bool Contains(uint64_t key) const { return FindSlot(key) != kNotFound; }

  // Returns the value for `key`, value-initializing a fresh V on insertion
  // (also when the slab slot is recycled). The pointer stays valid until the
  // key is erased, across any number of rehashes.
  V* Emplace(uint64_t key, bool* inserted = nullptr) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    size_t pos = Mix64(key) & Mask();
    while (slots_[pos].idx != kEmpty) {
      if (slots_[pos].key == key) {
        if (inserted != nullptr) {
          *inserted = false;
        }
        return EntryAt(slots_[pos].idx);
      }
      pos = (pos + 1) & Mask();
    }
    const uint32_t idx = AllocEntry();
    slots_[pos] = Slot{key, idx};
    ++size_;
    if (inserted != nullptr) {
      *inserted = true;
    }
    return EntryAt(idx);
  }

  bool Erase(uint64_t key) {
    const size_t pos = FindSlot(key);
    if (pos == kNotFound) {
      return false;
    }
    FreeEntry(slots_[pos].idx);
    ShiftBackFrom(pos);
    --size_;
    return true;
  }

  // Visits every (key, value) pair. Order is deterministic for a given
  // operation history but otherwise unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (const Slot& s : slots_) {
      if (s.idx != kEmpty) {
        fn(s.key, *EntryAt(s.idx));
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.idx != kEmpty) {
        fn(s.key, *EntryAt(s.idx));
      }
    }
  }

  void Reserve(size_t n) {
    size_t want = kMinSlots;
    while (n * 4 > want * 3) {
      want *= 2;
    }
    if (want > slots_.size()) {
      Rehash(want);
    }
  }

  void Clear() {
    for (const Slot& s : slots_) {
      if (s.idx != kEmpty) {
        EntryAt(s.idx)->~V();
      }
    }
    slots_.clear();
    chunks_.clear();
    free_.clear();
    allocated_ = 0;
    size_ = 0;
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinSlots = 16;
  static constexpr uint32_t kChunkShift = 10;  // 1024 values per slab chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  struct Slot {
    uint64_t key = 0;
    uint32_t idx = kEmpty;
  };

  size_t Mask() const { return slots_.size() - 1; }

  V* EntryAt(uint32_t idx) {
    return reinterpret_cast<V*>(chunks_[idx >> kChunkShift].get()) + (idx & (kChunkSize - 1));
  }
  const V* EntryAt(uint32_t idx) const {
    return reinterpret_cast<const V*>(chunks_[idx >> kChunkShift].get()) +
           (idx & (kChunkSize - 1));
  }

  size_t FindSlot(uint64_t key) const {
    if (slots_.empty()) {
      return kNotFound;
    }
    size_t pos = Mix64(key) & Mask();
    while (slots_[pos].idx != kEmpty) {
      if (slots_[pos].key == key) {
        return pos;
      }
      pos = (pos + 1) & Mask();
    }
    return kNotFound;
  }

  uint32_t AllocEntry() {
    uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if ((allocated_ >> kChunkShift) == chunks_.size()) {
        chunks_.emplace_back(new std::byte[sizeof(V) * kChunkSize]);
      }
      idx = allocated_++;
    }
    ::new (static_cast<void*>(EntryAt(idx))) V{};
    return idx;
  }

  void FreeEntry(uint32_t idx) {
    EntryAt(idx)->~V();
    free_.push_back(idx);
  }

  // Backward-shift deletion: pull displaced successors into the hole so every
  // remaining probe chain stays gap-free.
  void ShiftBackFrom(size_t hole) {
    size_t cur = (hole + 1) & Mask();
    while (slots_[cur].idx != kEmpty) {
      const size_t ideal = Mix64(slots_[cur].key) & Mask();
      if (((cur - ideal) & Mask()) >= ((cur - hole) & Mask())) {
        slots_[hole] = slots_[cur];
        hole = cur;
      }
      cur = (cur + 1) & Mask();
    }
    slots_[hole].idx = kEmpty;
  }

  void Rehash(size_t new_slots) {
    assert((new_slots & (new_slots - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    for (const Slot& s : old) {
      if (s.idx == kEmpty) {
        continue;
      }
      size_t pos = Mix64(s.key) & Mask();
      while (slots_[pos].idx != kEmpty) {
        pos = (pos + 1) & Mask();
      }
      slots_[pos] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t allocated_ = 0;
  size_t size_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_FLAT_MAP_H_
