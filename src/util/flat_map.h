// Open-addressing hash map keyed by uint64_t object ids — the request
// hot-path replacement for node-based std::unordered_map in the policies.
//
// Layout (Swiss-table-style two-array scheme): a contiguous control-byte
// array holds one byte per slot — the low 7 bits of the slot key's hash as a
// tag, or 0x80 for empty — probed 16 bytes at a time with one SIMD compare
// (SSE2/NEON, scalar-on-uint64 SWAR fallback; see src/util/simd_probe.h).
// A parallel slot array holds {key, slab index} pairs, and the values live
// in a slab pool of fixed-size chunks with a LIFO free list.
//
// Probing is linear, group by group, from the key's home slot; deletion is
// backward-shift (displaced successors are pulled into the hole), so probe
// chains stay contiguous and no tombstones accumulate — the first empty
// control byte still terminates every probe, and no rebuild pass is ever
// needed. Slot positions, iteration order, and all observable behavior are
// identical to a per-slot linear-probing map with the same hash; the group
// scan only changes how many candidates are inspected per instruction.
//
// Consequences the policies rely on:
//
//   * value addresses are STABLE — rehashing moves only the control/slot
//     arrays, never a value, so intrusive-list hooks embedded in entries
//     stay valid;
//   * lookups touch the control-byte line (64 slots per cache line) and
//     exactly the candidate slots the tag filter selects, instead of
//     key-comparing every occupied slot on the probe path;
//   * erase returns the slab slot to the free list; the next Emplace reuses
//     it with a freshly value-initialized V.
//
// Not thread-safe. ForEach must not insert or erase.
#ifndef SRC_UTIL_FLAT_MAP_H_
#define SRC_UTIL_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/util/hash.h"
#include "src/util/simd_probe.h"

namespace s3fifo {

template <typename V>
class FlatMap {
 public:
  FlatMap() = default;
  ~FlatMap() { Clear(); }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Hints the CPU to pull the probe lines for `key` into cache ahead of a
  // Find/Emplace — the simulators issue this a fixed distance ahead of the
  // request being processed so probe misses overlap. Both the control-byte
  // line and the home slot line are fetched (they are separate arrays).
  // No observable effect.
  void Prefetch(uint64_t key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!slots_.empty()) {
      const size_t pos = Mix64(key) & Mask();
      __builtin_prefetch(ctrl_.data() + pos);
      __builtin_prefetch(slots_.data() + pos);
    }
#else
    (void)key;
#endif
  }

  V* Find(uint64_t key) {
    const size_t pos = FindSlot(key);
    return pos == kNotFound ? nullptr : EntryAt(slots_[pos].idx);
  }
  const V* Find(uint64_t key) const {
    const size_t pos = FindSlot(key);
    return pos == kNotFound ? nullptr : EntryAt(slots_[pos].idx);
  }
  bool Contains(uint64_t key) const { return FindSlot(key) != kNotFound; }

  // Returns the value for `key`, value-initializing a fresh V on insertion
  // (also when the slab slot is recycled). The pointer stays valid until the
  // key is erased, across any number of rehashes.
  V* Emplace(uint64_t key, bool* inserted = nullptr) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const uint64_t hash = Mix64(key);
    const uint8_t tag = TagOf(hash);
    size_t pos = hash & Mask();
    PrefetchSlots(pos);  // overlap the slot-line miss with the ctrl load
    for (;;) {
      const probe::Group g = probe::LoadGroup(ctrl_.data() + pos);
      const uint32_t empty = probe::MatchEmpty(g);
      // Candidates exclude empty bytes: a SWAR MatchTag false positive may
      // land on an emptied slot whose stale key still equals `key`, and the
      // key compare alone cannot reject that. MatchEmpty is exact in every
      // backend, so the mask restores correctness at one AND.
      for (uint32_t m = probe::MatchTag(g, tag) & ~empty; m != 0; m &= m - 1) {
        const size_t cand = (pos + Ctz(m)) & Mask();
        if (slots_[cand].key == key) {
          if (inserted != nullptr) {
            *inserted = false;
          }
          return EntryAt(slots_[cand].idx);
        }
      }
      if (empty != 0) {
        const size_t target = (pos + Ctz(empty)) & Mask();
        const uint32_t idx = AllocEntry();
        slots_[target] = Slot{key, idx};
        SetCtrl(target, tag);
        ++size_;
        if (inserted != nullptr) {
          *inserted = true;
        }
        return EntryAt(idx);
      }
      pos = (pos + probe::kGroupWidth) & Mask();
    }
  }

  bool Erase(uint64_t key) {
    const size_t pos = FindSlot(key);
    if (pos == kNotFound) {
      return false;
    }
    FreeEntry(slots_[pos].idx);
    ShiftBackFrom(pos);
    --size_;
    return true;
  }

  // Visits every (key, value) pair. Order is deterministic for a given
  // operation history but otherwise unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] != probe::kCtrlEmpty) {
        fn(slots_[i].key, *EntryAt(slots_[i].idx));
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] != probe::kCtrlEmpty) {
        fn(slots_[i].key, *EntryAt(slots_[i].idx));
      }
    }
  }

  void Reserve(size_t n) {
    size_t want = kMinSlots;
    while (n * 4 > want * 3) {
      want *= 2;
    }
    if (want > slots_.size()) {
      Rehash(want);
    }
  }

  void Clear() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] != probe::kCtrlEmpty) {
        EntryAt(slots_[i].idx)->~V();
      }
    }
    slots_.clear();
    ctrl_.clear();
    chunks_.clear();
    free_.clear();
    allocated_ = 0;
    size_ = 0;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinSlots = 16;
  static constexpr uint32_t kChunkShift = 10;  // 1024 values per slab chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  // The control array carries kGroupWidth-1 extra bytes mirroring the first
  // kGroupWidth-1 slots, so an unaligned 16-byte group load starting at any
  // slot position wraps around the table without a second load.
  static constexpr size_t kCtrlPad = probe::kGroupWidth - 1;

  struct Slot {
    uint64_t key = 0;
    uint32_t idx = 0;
  };

  // A hit costs three dependent lines (ctrl -> slot -> value); issuing the
  // slot-line fetch before the ctrl load runs the first two in parallel,
  // which is most of the old one-array layout's large-table hit latency.
  void PrefetchSlots(size_t pos) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(slots_.data() + pos);
#else
    (void)pos;
#endif
  }

  static int Ctz(uint32_t mask) { return __builtin_ctz(mask); }
  // 7-bit tag from hash bits the slot position (low bits) does not use.
  static uint8_t TagOf(uint64_t hash) { return static_cast<uint8_t>(hash >> 57); }

  size_t Mask() const { return slots_.size() - 1; }

  // Writes a control byte, keeping the wraparound mirror in sync.
  void SetCtrl(size_t i, uint8_t value) {
    ctrl_[i] = value;
    if (i < kCtrlPad) {
      ctrl_[slots_.size() + i] = value;
    }
  }

  V* EntryAt(uint32_t idx) {
    return reinterpret_cast<V*>(chunks_[idx >> kChunkShift].get()) + (idx & (kChunkSize - 1));
  }
  const V* EntryAt(uint32_t idx) const {
    return reinterpret_cast<const V*>(chunks_[idx >> kChunkShift].get()) +
           (idx & (kChunkSize - 1));
  }

  size_t FindSlot(uint64_t key) const {
    if (slots_.empty()) {
      return kNotFound;
    }
    const uint64_t hash = Mix64(key);
    const uint8_t tag = TagOf(hash);
    size_t pos = hash & Mask();
    PrefetchSlots(pos);  // overlap the slot-line miss with the ctrl load
    for (;;) {
      const probe::Group g = probe::LoadGroup(ctrl_.data() + pos);
      const uint32_t empty = probe::MatchEmpty(g);
      // Empty bytes are masked out of the candidate set — a SWAR MatchTag
      // false positive on an emptied slot could otherwise match the slot's
      // stale key (MatchEmpty is exact in every backend).
      for (uint32_t m = probe::MatchTag(g, tag) & ~empty; m != 0; m &= m - 1) {
        const size_t cand = (pos + Ctz(m)) & Mask();
        if (slots_[cand].key == key) {
          return cand;
        }
      }
      // Probe chains are contiguous (backward-shift deletion), so the first
      // empty byte proves the key is absent. A tag match past an empty byte
      // within this group belongs to another chain; the key compare above
      // rejects it, no ordering check needed.
      if (empty != 0) {
        return kNotFound;
      }
      pos = (pos + probe::kGroupWidth) & Mask();
    }
  }

  uint32_t AllocEntry() {
    uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if ((allocated_ >> kChunkShift) == chunks_.size()) {
        chunks_.emplace_back(new std::byte[sizeof(V) * kChunkSize]);
      }
      idx = allocated_++;
    }
    ::new (static_cast<void*>(EntryAt(idx))) V{};
    return idx;
  }

  void FreeEntry(uint32_t idx) {
    EntryAt(idx)->~V();
    free_.push_back(idx);
  }

  // Backward-shift deletion: pull displaced successors into the hole so every
  // remaining probe chain stays gap-free. Per-slot (erases are far rarer than
  // finds); the control byte travels with its slot.
  void ShiftBackFrom(size_t hole) {
    size_t cur = (hole + 1) & Mask();
    while (ctrl_[cur] != probe::kCtrlEmpty) {
      const size_t ideal = Mix64(slots_[cur].key) & Mask();
      if (((cur - ideal) & Mask()) >= ((cur - hole) & Mask())) {
        slots_[hole] = slots_[cur];
        SetCtrl(hole, ctrl_[cur]);
        hole = cur;
      }
      cur = (cur + 1) & Mask();
    }
    SetCtrl(hole, probe::kCtrlEmpty);
  }

  void Rehash(size_t new_slots) {
    assert((new_slots & (new_slots - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_slots, Slot{});
    ctrl_.assign(new_slots + kCtrlPad, probe::kCtrlEmpty);
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_ctrl[i] == probe::kCtrlEmpty) {
        continue;
      }
      const uint64_t hash = Mix64(old_slots[i].key);
      size_t pos = hash & Mask();
      while (ctrl_[pos] != probe::kCtrlEmpty) {
        pos = (pos + 1) & Mask();
      }
      slots_[pos] = old_slots[i];
      SetCtrl(pos, TagOf(hash));
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;  // slots_.size() + kCtrlPad bytes once allocated
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t allocated_ = 0;
  size_t size_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_FLAT_MAP_H_
