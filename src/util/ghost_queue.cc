#include "src/util/ghost_queue.h"

#include <algorithm>

namespace s3fifo {

GhostQueue::GhostQueue(uint64_t capacity) : capacity_(std::max<uint64_t>(capacity, 1)) {}

void GhostQueue::Insert(uint64_t id) {
  if (!seq_of_.count(id)) {
    while (seq_of_.size() >= capacity_) {
      EvictOldest();
    }
  }
  const uint64_t seq = next_seq_++;
  seq_of_[id] = seq;  // any older slot for id becomes stale
  fifo_.emplace_back(seq, id);
  DrainStale();
}

bool GhostQueue::Contains(uint64_t id) const { return seq_of_.count(id) != 0; }

void GhostQueue::Remove(uint64_t id) { seq_of_.erase(id); }

void GhostQueue::Clear() {
  fifo_.clear();
  seq_of_.clear();
}

void GhostQueue::set_capacity(uint64_t capacity) {
  capacity_ = std::max<uint64_t>(capacity, 1);
  while (seq_of_.size() > capacity_) {
    EvictOldest();
  }
}

void GhostQueue::EvictOldest() {
  while (!fifo_.empty()) {
    const auto [seq, id] = fifo_.front();
    fifo_.pop_front();
    auto it = seq_of_.find(id);
    if (it != seq_of_.end() && it->second == seq) {
      seq_of_.erase(it);
      return;
    }
  }
}

void GhostQueue::DrainStale() {
  // Bound fifo_'s footprint: stale slots can at most double the deque before
  // this compaction kicks in.
  if (fifo_.size() <= 2 * capacity_ + 16) {
    return;
  }
  std::deque<std::pair<uint64_t, uint64_t>> compacted;
  for (const auto& [seq, id] : fifo_) {
    auto it = seq_of_.find(id);
    if (it != seq_of_.end() && it->second == seq) {
      compacted.emplace_back(seq, id);
    }
  }
  fifo_.swap(compacted);
}

}  // namespace s3fifo
