// Exact ghost FIFO queue: remembers the ids (not the data) of the last
// `capacity` evicted objects. This is the precise reference structure; the
// space-efficient fingerprint variant from paper §4.2 is GhostTable.
//
// Re-inserting an id refreshes its position (moves it to the head); each id
// occupies at most one live slot.
#ifndef SRC_UTIL_GHOST_QUEUE_H_
#define SRC_UTIL_GHOST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

namespace s3fifo {

class GhostQueue {
 public:
  explicit GhostQueue(uint64_t capacity);

  // Inserts id at the head (refreshing its position if already present);
  // evicts the oldest live entry if the queue is full.
  void Insert(uint64_t id);
  bool Contains(uint64_t id) const;
  // Removes id (e.g. on a ghost hit). No-op if absent.
  void Remove(uint64_t id);
  void Clear();

  uint64_t size() const { return static_cast<uint64_t>(seq_of_.size()); }
  uint64_t capacity() const { return capacity_; }
  // Shrinking evicts the oldest entries immediately.
  void set_capacity(uint64_t capacity);

 private:
  void EvictOldest();
  void DrainStale();

  uint64_t capacity_;
  uint64_t next_seq_ = 0;
  // A fifo_ slot is live iff seq_of_[id] == seq; stale slots are skipped
  // lazily when they reach the front.
  std::deque<std::pair<uint64_t, uint64_t>> fifo_;  // (seq, id), oldest first
  std::unordered_map<uint64_t, uint64_t> seq_of_;   // id -> live seq
};

}  // namespace s3fifo

#endif  // SRC_UTIL_GHOST_QUEUE_H_
