#include "src/util/ghost_table.h"

#include <algorithm>

#include "src/util/hash.h"

namespace s3fifo {
namespace {

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

}  // namespace

GhostTable::GhostTable(uint64_t capacity) : capacity_(std::max<uint64_t>(capacity, 1)) {
  // 2x slots over capacity keeps the live load factor around 50%, so expired
  // or overwritten entries are rare enough not to distort membership.
  const uint64_t num_buckets = NextPow2(std::max<uint64_t>(2 * capacity_ / kBucketWidth, 1));
  bucket_mask_ = num_buckets - 1;
  slots_.assign(num_buckets * kBucketWidth, Slot{});
}

uint64_t GhostTable::BucketFor(uint64_t id) const { return HashId(id) & bucket_mask_; }

bool GhostTable::IsLive(const Slot& slot) const {
  if (slot.fingerprint == 0) {
    return false;
  }
  // 32-bit modular distance; valid while capacity_ < 2^31.
  const uint32_t age = static_cast<uint32_t>(insertions_) - slot.time;
  return age <= capacity_;
}

void GhostTable::Insert(uint64_t id) {
  const uint64_t base = BucketFor(id) * kBucketWidth;
  const uint32_t fp = Fingerprint32(id);
  ++insertions_;
  const uint32_t now = static_cast<uint32_t>(insertions_);

  int free_slot = -1;
  int oldest_slot = 0;
  uint32_t oldest_age = 0;
  for (int i = 0; i < kBucketWidth; ++i) {
    Slot& slot = slots_[base + i];
    if (slot.fingerprint == fp) {
      slot.time = now;  // refresh position in the logical queue
      return;
    }
    if (!IsLive(slot)) {
      if (free_slot < 0) {
        free_slot = i;  // expired/empty: reclaim on collision (paper §4.2)
      }
    } else {
      const uint32_t age = now - slot.time;
      if (age >= oldest_age) {
        oldest_age = age;
        oldest_slot = i;
      }
    }
  }
  Slot& victim = slots_[base + (free_slot >= 0 ? free_slot : oldest_slot)];
  victim.fingerprint = fp;
  victim.time = now;
}

bool GhostTable::Contains(uint64_t id) const {
  const uint64_t base = BucketFor(id) * kBucketWidth;
  const uint32_t fp = Fingerprint32(id);
  for (int i = 0; i < kBucketWidth; ++i) {
    const Slot& slot = slots_[base + i];
    if (slot.fingerprint == fp && IsLive(slot)) {
      return true;
    }
  }
  return false;
}

void GhostTable::Remove(uint64_t id) {
  const uint64_t base = BucketFor(id) * kBucketWidth;
  const uint32_t fp = Fingerprint32(id);
  for (int i = 0; i < kBucketWidth; ++i) {
    Slot& slot = slots_[base + i];
    if (slot.fingerprint == fp) {
      slot = Slot{};
      return;
    }
  }
}

void GhostTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  insertions_ = 0;
}

uint64_t GhostTable::CountLive() const {
  uint64_t live = 0;
  for (const Slot& slot : slots_) {
    if (IsLive(slot)) {
      ++live;
    }
  }
  return live;
}

}  // namespace s3fifo
