#include "src/util/ghost_table.h"

#include <algorithm>

#include "src/util/hash.h"
#include "src/util/simd_probe.h"

namespace s3fifo {
namespace {

uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

}  // namespace

GhostTable::GhostTable(uint64_t capacity) : capacity_(std::max<uint64_t>(capacity, 1)) {
  // 2x slots over capacity keeps the live load factor around 50%, so expired
  // or overwritten entries are rare enough not to distort membership.
  const uint64_t num_buckets = NextPow2(std::max<uint64_t>(2 * capacity_ / kBucketWidth, 1));
  bucket_mask_ = num_buckets - 1;
  buckets_.assign(num_buckets, Bucket{});
}

uint64_t GhostTable::BucketFor(uint64_t id) const { return HashId(id) & bucket_mask_; }

bool GhostTable::IsLive(uint32_t fp, uint32_t time) const {
  if (fp == 0) {
    return false;
  }
  // 32-bit modular distance; valid while capacity_ < 2^31.
  const uint32_t age = static_cast<uint32_t>(insertions_) - time;
  return age <= capacity_;
}

void GhostTable::Insert(uint64_t id) {
  Bucket& bucket = buckets_[BucketFor(id)];
  const uint32_t fp = Fingerprint32(id);
  ++insertions_;
  const uint32_t now = static_cast<uint32_t>(insertions_);

  if (const uint32_t match = probe::Match32x8(bucket.fp, fp)) {
    bucket.time[__builtin_ctz(match)] = now;  // refresh position in the logical queue
    return;
  }
  int free_slot = -1;
  int oldest_slot = 0;
  uint32_t oldest_age = 0;
  for (int i = 0; i < kBucketWidth; ++i) {
    if (!IsLive(bucket.fp[i], bucket.time[i])) {
      if (free_slot < 0) {
        free_slot = i;  // expired/empty: reclaim on collision (paper §4.2)
      }
    } else {
      const uint32_t age = now - bucket.time[i];
      if (age >= oldest_age) {
        oldest_age = age;
        oldest_slot = i;
      }
    }
  }
  const int victim = free_slot >= 0 ? free_slot : oldest_slot;
  bucket.fp[victim] = fp;
  bucket.time[victim] = now;
}

bool GhostTable::Contains(uint64_t id) const {
  const Bucket& bucket = buckets_[BucketFor(id)];
  const uint32_t fp = Fingerprint32(id);
  for (uint32_t m = probe::Match32x8(bucket.fp, fp); m != 0; m &= m - 1) {
    const int i = __builtin_ctz(m);
    if (IsLive(bucket.fp[i], bucket.time[i])) {
      return true;
    }
  }
  return false;
}

void GhostTable::Remove(uint64_t id) {
  Bucket& bucket = buckets_[BucketFor(id)];
  const uint32_t fp = Fingerprint32(id);
  if (const uint32_t match = probe::Match32x8(bucket.fp, fp)) {
    const int i = __builtin_ctz(match);
    bucket.fp[i] = 0;
    bucket.time[i] = 0;
  }
}

void GhostTable::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), Bucket{});
  insertions_ = 0;
}

uint64_t GhostTable::CountLive() const {
  uint64_t live = 0;
  for (const Bucket& bucket : buckets_) {
    for (int i = 0; i < kBucketWidth; ++i) {
      if (IsLive(bucket.fp[i], bucket.time[i])) {
        ++live;
      }
    }
  }
  return live;
}

}  // namespace s3fifo
