// Space-efficient ghost queue from paper §4.2: a bucketed hash table storing
// a 4-byte fingerprint plus an eviction "timestamp" measured in the number of
// insertions into the ghost queue. An entry is a member of the logical FIFO
// ghost queue iff (insertions - entry.time) <= capacity. Entries expire
// implicitly and are physically reclaimed on collision, exactly as the paper
// describes ("the hash table entry is removed during hash collision — when
// the slot is needed to store other entries").
//
// Buckets are laid out SoA: the eight fingerprints of a bucket are
// contiguous, so membership probes compare all eight with one SIMD compare
// (probe::Match32x8 — SSE2/NEON, scalar fallback) instead of a per-slot
// loop; the eight timestamps follow in the same 64-byte block. Slot i is
// (fp[i], time[i]); scan order and all observable behavior match the
// scalar per-slot layout exactly.
//
// Fingerprint collisions can cause false positives; with a 32-bit
// fingerprint these are ~2^-32 per lookup per slot and do not measurably
// affect miss ratios (verified against the exact GhostQueue in tests).
#ifndef SRC_UTIL_GHOST_TABLE_H_
#define SRC_UTIL_GHOST_TABLE_H_

#include <cstdint>
#include <vector>

namespace s3fifo {

class GhostTable {
 public:
  // capacity: how many most-recent insertions constitute the logical queue.
  explicit GhostTable(uint64_t capacity);

  void Insert(uint64_t id);
  bool Contains(uint64_t id) const;
  void Remove(uint64_t id);
  void Clear();

  // Pulls the bucket for `id` into CPU cache ahead of a Contains/Insert
  // (one line: fingerprints and timestamps share the 64-byte bucket).
  void Prefetch(uint64_t id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&buckets_[BucketFor(id)]);
#else
    (void)id;
#endif
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t insertions() const { return insertions_; }
  // Approximate: number of live slots (walks the table; O(size), test use).
  uint64_t CountLive() const;

 private:
  static constexpr int kBucketWidth = 8;

  // 64 bytes: one cache line per bucket, fingerprints first so the SIMD
  // probe touches the first half-line only.
  struct Bucket {
    uint32_t fp[kBucketWidth];    // 0 = empty
    uint32_t time[kBucketWidth];  // low 32 bits of the insertion counter
  };

  bool IsLive(uint32_t fp, uint32_t time) const;
  uint64_t BucketFor(uint64_t id) const;

  uint64_t capacity_;
  uint64_t insertions_ = 0;
  uint64_t bucket_mask_;
  std::vector<Bucket> buckets_;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_GHOST_TABLE_H_
