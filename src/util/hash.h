// Hashing primitives shared across the library.
//
// All hash functions here are deterministic across platforms and runs; the
// simulator relies on that for reproducibility.
#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstdint>

namespace s3fifo {

// SplitMix64 finalizer: a strong 64-bit mixing function. Suitable both as a
// standalone integer hash and as a seed expander.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of an object id. Used for hash-table placement and Bloom filters.
inline constexpr uint64_t HashId(uint64_t id) { return Mix64(id); }

// Seeded variant: two independent hash streams per id, combinable as
// h1 + i * h2 (Kirsch-Mitzenmacher) for k-hash structures.
inline constexpr uint64_t HashId2(uint64_t id) {
  return Mix64(id ^ 0xc2b2ae3d27d4eb4fULL);
}

// 32-bit fingerprint used by the ghost table (paper §4.2: "The fingerprint
// stores a hash of the object using 4 bytes").
inline constexpr uint32_t Fingerprint32(uint64_t id) {
  uint64_t h = Mix64(id ^ 0x165667b19e3779f9ULL);
  // Reserve 0 as the "empty slot" sentinel.
  uint32_t fp = static_cast<uint32_t>(h >> 32);
  return fp == 0 ? 1u : fp;
}

}  // namespace s3fifo

#endif  // SRC_UTIL_HASH_H_
