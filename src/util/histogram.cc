#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace s3fifo {

void Summary::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Summary::Merge(const Summary& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    auto* self = const_cast<Summary*>(this);
    std::sort(self->values_.begin(), self->values_.end());
    self->sorted_ = true;
  }
}

double Summary::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s / static_cast<double>(values_.size());
}

double Summary::Min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Summary::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Summary::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double s = 0.0;
  for (double v : values_) {
    s += (v - mean) * (v - mean);
  }
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

LogHistogram::LogHistogram() : buckets_(65, 0) {}

int LogHistogram::BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return 64 - __builtin_clzll(value);
}

void LogHistogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  ++count_;
  sum_ += static_cast<double>(value);
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::CumulativeFraction(uint64_t value) const {
  if (count_ == 0) {
    return 0.0;
  }
  const int b = BucketFor(value);
  uint64_t below = 0;
  for (int i = 0; i <= b; ++i) {
    below += buckets_[i];
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

uint64_t LogHistogram::Quantile(double fraction) const {
  if (count_ == 0) {
    return 0;
  }
  const double target = fraction * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      return i == 0 ? 0 : (1ULL << i) - 1;  // bucket upper bound
    }
  }
  return ~0ULL;
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    os << "[" << lo << "," << hi << "]: " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace s3fifo
