// Small statistics helpers: exact percentile summaries over collected
// samples, and a log-bucketed histogram for long-tailed quantities (eviction
// ages, reuse distances).
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s3fifo {

// Accumulates raw samples; percentiles computed on demand (sorts lazily).
class Summary {
 public:
  void Add(double value);
  void Merge(const Summary& other);

  size_t count() const { return values_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  // p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Stddev() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
};

// Power-of-two bucketed histogram for non-negative integer samples.
class LogHistogram {
 public:
  LogHistogram();

  void Add(uint64_t value);
  uint64_t count() const { return count_; }
  double Mean() const;
  // Fraction of samples <= value.
  double CumulativeFraction(uint64_t value) const;
  // Value at which the CDF first reaches fraction (approximate: bucket upper
  // bound).
  uint64_t Quantile(double fraction) const;
  std::string ToString() const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  static int BucketFor(uint64_t value);

  std::vector<uint64_t> buckets_;  // bucket i holds values in [2^(i-1), 2^i)
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_HISTOGRAM_H_
