// Intrusive doubly-linked list.
//
// Cache policies keep their per-object metadata in a hash map (node-based, so
// addresses are stable) and chain the entries through embedded ListHooks.
// This gives O(1) splice/remove without per-operation allocation — the same
// structure production caches (Cachelib, memcached) use for LRU queues.
//
// An entry may sit on several lists at once by embedding several hooks (LIRS
// needs stack + queue membership simultaneously).
#ifndef SRC_UTIL_INTRUSIVE_LIST_H_
#define SRC_UTIL_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

namespace s3fifo {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;
  void* owner = nullptr;  // back-pointer to the enclosing entry

  bool linked() const { return prev != nullptr; }
};

// T is the entry type; HookPtr selects which embedded hook this list uses.
template <typename T, ListHook T::*HookPtr>
class IntrusiveList {
 public:
  IntrusiveList() { Reset(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Head = most recently inserted ("front"), tail = oldest ("back").
  T* Front() { return empty() ? nullptr : Owner(head_.next); }
  T* Back() { return empty() ? nullptr : Owner(head_.prev); }
  const T* Front() const { return empty() ? nullptr : Owner(head_.next); }
  const T* Back() const { return empty() ? nullptr : Owner(head_.prev); }

  void PushFront(T* entry) { InsertAfter(&head_, entry); }
  void PushBack(T* entry) { InsertAfter(head_.prev, entry); }

  void Remove(T* entry) {
    ListHook* h = Hook(entry);
    assert(h->linked());
    h->prev->next = h->next;
    h->next->prev = h->prev;
    h->prev = h->next = nullptr;
    h->owner = nullptr;
    --size_;
  }

  T* PopFront() {
    T* e = Front();
    if (e != nullptr) {
      Remove(e);
    }
    return e;
  }

  T* PopBack() {
    T* e = Back();
    if (e != nullptr) {
      Remove(e);
    }
    return e;
  }

  void MoveToFront(T* entry) {
    Remove(entry);
    PushFront(entry);
  }

  void MoveToBack(T* entry) {
    Remove(entry);
    PushBack(entry);
  }

  // Splices the contiguous segment [newest .. oldest] to the front in O(1),
  // preserving the segment's internal order. `newest` must be on the head
  // side of `oldest` (or equal), and every entry between them belongs to the
  // segment. Equivalent to MoveToFront(oldest), …, MoveToFront(newest) one
  // entry at a time — the batched eviction sweeps (CLOCK, S3-FIFO main) use
  // it to rotate a run of surviving entries with six pointer writes instead
  // of six per entry. Splicing a segment already at the front (including the
  // whole list) is the identity.
  void MoveSegmentToFront(T* newest, T* oldest) {
    ListHook* a = Hook(newest);
    ListHook* b = Hook(oldest);
    assert(a->linked() && b->linked());
    if (a->prev == &head_) {
      return;
    }
    a->prev->next = b->next;
    b->next->prev = a->prev;
    a->prev = &head_;
    b->next = head_.next;
    head_.next->prev = b;
    head_.next = a;
  }

  bool Contains(const T* entry) const { return (entry->*HookPtr).linked(); }

  // Neighbour toward the tail (older side); nullptr at the tail.
  T* Older(T* entry) {
    ListHook* n = Hook(entry)->next;
    return n == &head_ ? nullptr : Owner(n);
  }

  // Neighbour toward the head (newer side); nullptr at the head.
  T* Newer(T* entry) {
    ListHook* p = Hook(entry)->prev;
    return p == &head_ ? nullptr : Owner(p);
  }

  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

 private:
  static ListHook* Hook(T* entry) { return &(entry->*HookPtr); }
  static T* Owner(ListHook* h) { return static_cast<T*>(h->owner); }
  static const T* Owner(const ListHook* h) { return static_cast<const T*>(h->owner); }

  void InsertAfter(ListHook* pos, T* entry) {
    ListHook* h = Hook(entry);
    assert(!h->linked());
    h->owner = entry;
    h->prev = pos;
    h->next = pos->next;
    pos->next->prev = h;
    pos->next = h;
    ++size_;
  }

  void Reset() {
    head_.prev = &head_;
    head_.next = &head_;
    head_.owner = nullptr;
    size_ = 0;
  }

  ListHook head_;
  size_t size_ = 0;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_INTRUSIVE_LIST_H_
