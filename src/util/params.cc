#include "src/util/params.h"

#include <stdexcept>

namespace s3fifo {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Params::Params(std::string_view spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    std::string_view pair = Trim(spec.substr(pos, comma - pos));
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("Params: malformed pair '" + std::string(pair) + "'");
      }
      kv_.emplace(std::string(Trim(pair.substr(0, eq))), std::string(Trim(pair.substr(eq + 1))));
    }
    pos = comma + 1;
  }
}

bool Params::Has(const std::string& key) const { return kv_.count(key) != 0; }

double Params::GetDouble(const std::string& key, double default_value) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? default_value : std::stod(it->second);
}

uint64_t Params::GetU64(const std::string& key, uint64_t default_value) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? default_value : static_cast<uint64_t>(std::stoull(it->second));
}

bool Params::GetBool(const std::string& key, bool default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) {
    return default_value;
  }
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

std::string Params::GetString(const std::string& key, const std::string& default_value) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? default_value : it->second;
}

}  // namespace s3fifo
