// Tiny "key=value,key=value" parameter parser used by CacheConfig::params so
// benches and examples can configure policies from strings
// ("s3fifo", "small_ratio=0.05,ghost_ratio=0.9").
#ifndef SRC_UTIL_PARAMS_H_
#define SRC_UTIL_PARAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace s3fifo {

class Params {
 public:
  Params() = default;
  // Parses "k1=v1,k2=v2". Whitespace around keys/values is trimmed. Throws
  // std::invalid_argument on malformed input (a pair without '=').
  explicit Params(std::string_view spec);

  bool Has(const std::string& key) const;
  double GetDouble(const std::string& key, double default_value) const;
  uint64_t GetU64(const std::string& key, uint64_t default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key, const std::string& default_value) const;

  // Keys that were parsed but never read; lets policies reject typos.
  const std::map<std::string, std::string>& raw() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_PARAMS_H_
