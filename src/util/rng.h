// xoshiro256++ pseudo-random generator.
//
// Deterministic, fast (sub-nanosecond per draw), and of much higher quality
// than std::minstd / rand(). Satisfies UniformRandomBitGenerator so it can be
// plugged into <random> distributions when convenient.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/hash.h"

namespace s3fifo {

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9d2c5680f8657a1bULL) {
    // Expand the seed with SplitMix64 per the xoshiro authors' guidance.
    for (auto& word : state_) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      word = Mix64(seed);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift; the tiny modulo bias is irrelevant for
    // simulation workloads and avoided for power-of-two bounds anyway.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Bernoulli draw.
  bool NextBool(double probability) { return NextDouble() < probability; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace s3fifo

#endif  // SRC_UTIL_RNG_H_
