// 16-wide control-byte group probing — the SIMD kernel under FlatMap and
// GhostTable (Swiss-table-style metadata scans, §4.3 "FIFO queues win on
// throughput" applied to the reproduction's own hot path).
//
// A probe group is 16 control bytes. Tags occupy the low 7 bits of a byte
// (0x00..0x7f); 0x80 marks an empty slot, so the byte's sign bit doubles as
// the empty flag. The three queries every caller needs:
//
//   * MatchTag(group, tag)  -> 16-bit mask, bit j set iff byte j == tag
//     (callers verify candidates with a full key compare, so a backend may
//     only ever produce a SUPERSET of the true matches — the portable SWAR
//     backend exploits this);
//   * MatchEmpty(group)     -> 16-bit mask of empty bytes (always exact);
//   * Match32x8(lanes, x)   -> 8-bit mask over eight uint32 lanes (the
//     GhostTable fingerprint-bucket probe).
//
// Backend selection is compile-time: SSE2 on x86-64 (baseline, no -march
// flags needed), NEON on aarch64, and a scalar-on-uint64 SWAR fallback
// everywhere else or when S3FIFO_DISABLE_SIMD is defined (the CMake option
// of the same name forces it so both paths stay tested). The Portable*
// entry points below are ALWAYS compiled, whatever the active backend, so
// equivalence tests can compare the two in one binary.
//
// Bit-identity contract: every backend leads callers to the same decisions.
// MatchEmpty and Match32x8 are bitwise identical across backends; MatchTag
// candidate masks are checked against full keys, so spurious bits (SWAR)
// cannot change any observable result.
#ifndef SRC_UTIL_SIMD_PROBE_H_
#define SRC_UTIL_SIMD_PROBE_H_

#include <cstdint>
#include <cstring>

#if !defined(S3FIFO_DISABLE_SIMD) && (defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__))
#define S3FIFO_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(S3FIFO_DISABLE_SIMD) && defined(__ARM_NEON)
#define S3FIFO_SIMD_NEON 1
#include <arm_neon.h>
#else
#define S3FIFO_SIMD_PORTABLE 1
#endif

namespace s3fifo {
namespace probe {

inline constexpr int kGroupWidth = 16;
// Control byte for an empty slot; tags are 7-bit (< 0x80).
inline constexpr uint8_t kCtrlEmpty = 0x80;

// ---- Portable SWAR backend (always compiled; also the fallback) ----------

struct PortableGroup {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

inline PortableGroup PortableLoadGroup(const uint8_t* ctrl) {
  PortableGroup g;
  std::memcpy(&g.lo, ctrl, sizeof(g.lo));
  std::memcpy(&g.hi, ctrl + 8, sizeof(g.hi));
  return g;
}

namespace detail {

// Per-byte zero detector (Mycroft's haszero). The result can carry false
// positives on bytes adjacent to a true zero — acceptable for MatchTag
// (candidates are key-verified), never used for MatchEmpty.
inline uint64_t ZeroBytes(uint64_t v) {
  return (v - 0x0101010101010101ULL) & ~v & 0x8080808080808080ULL;
}

inline uint32_t ByteMaskToBits(uint64_t byte_mask, int bit_base) {
  uint32_t bits = 0;
  while (byte_mask != 0) {
    bits |= 1u << (bit_base + (__builtin_ctzll(byte_mask) >> 3));
    byte_mask &= byte_mask - 1;
  }
  return bits;
}

}  // namespace detail

inline uint32_t PortableMatchTag(const PortableGroup& g, uint8_t tag) {
  const uint64_t pattern = 0x0101010101010101ULL * tag;
  return detail::ByteMaskToBits(detail::ZeroBytes(g.lo ^ pattern), 0) |
         detail::ByteMaskToBits(detail::ZeroBytes(g.hi ^ pattern), 8);
}

inline uint32_t PortableMatchEmpty(const PortableGroup& g) {
  // Exact: the sign bit is set on empty bytes only (tags are 7-bit).
  return detail::ByteMaskToBits(g.lo & 0x8080808080808080ULL, 0) |
         detail::ByteMaskToBits(g.hi & 0x8080808080808080ULL, 8);
}

inline uint32_t PortableMatch32x8(const uint32_t* lanes, uint32_t x) {
  uint32_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    mask |= static_cast<uint32_t>(lanes[i] == x) << i;
  }
  return mask;
}

// ---- Active backend ------------------------------------------------------

#if defined(S3FIFO_SIMD_SSE2)

inline constexpr const char* kProbeBackend = "sse2";

struct Group {
  __m128i v;
};

inline Group LoadGroup(const uint8_t* ctrl) {
  return Group{_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))};
}

inline uint32_t MatchTag(const Group& g, uint8_t tag) {
  const __m128i pattern = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(g.v, pattern)));
}

inline uint32_t MatchEmpty(const Group& g) {
  // movemask collects the sign bits — set exactly on empty control bytes.
  return static_cast<uint32_t>(_mm_movemask_epi8(g.v));
}

inline uint32_t Match32x8(const uint32_t* lanes, uint32_t x) {
  const __m128i pattern = _mm_set1_epi32(static_cast<int>(x));
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 4));
  const uint32_t lo_mask =
      static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, pattern))));
  const uint32_t hi_mask =
      static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hi, pattern))));
  return lo_mask | (hi_mask << 4);
}

#elif defined(S3FIFO_SIMD_NEON)

inline constexpr const char* kProbeBackend = "neon";

struct Group {
  uint8x16_t v;
};

inline Group LoadGroup(const uint8_t* ctrl) { return Group{vld1q_u8(ctrl)}; }

namespace detail {

// NEON has no movemask; narrow each byte-lane compare result (0x00/0xff) to
// 4 bits and extract with one 64-bit move.
inline uint32_t NeonMaskBits(uint8x16_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  const uint64_t packed = vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
  uint32_t bits = 0;
  uint64_t m = packed & 0x1111111111111111ULL;
  while (m != 0) {
    bits |= 1u << (__builtin_ctzll(m) >> 2);
    m &= m - 1;
  }
  return bits;
}

}  // namespace detail

inline uint32_t MatchTag(const Group& g, uint8_t tag) {
  return detail::NeonMaskBits(vceqq_u8(g.v, vdupq_n_u8(tag)));
}

inline uint32_t MatchEmpty(const Group& g) {
  return detail::NeonMaskBits(vcgeq_u8(g.v, vdupq_n_u8(kCtrlEmpty)));
}

inline uint32_t Match32x8(const uint32_t* lanes, uint32_t x) {
  const uint32x4_t pattern = vdupq_n_u32(x);
  const uint32x4_t lo = vceqq_u32(vld1q_u32(lanes), pattern);
  const uint32x4_t hi = vceqq_u32(vld1q_u32(lanes + 4), pattern);
  uint32_t mask = 0;
  mask |= vgetq_lane_u32(lo, 0) & 1u;
  mask |= (vgetq_lane_u32(lo, 1) & 1u) << 1;
  mask |= (vgetq_lane_u32(lo, 2) & 1u) << 2;
  mask |= (vgetq_lane_u32(lo, 3) & 1u) << 3;
  mask |= (vgetq_lane_u32(hi, 0) & 1u) << 4;
  mask |= (vgetq_lane_u32(hi, 1) & 1u) << 5;
  mask |= (vgetq_lane_u32(hi, 2) & 1u) << 6;
  mask |= (vgetq_lane_u32(hi, 3) & 1u) << 7;
  return mask;
}

#else  // portable

inline constexpr const char* kProbeBackend = "swar";

using Group = PortableGroup;

inline Group LoadGroup(const uint8_t* ctrl) { return PortableLoadGroup(ctrl); }
inline uint32_t MatchTag(const Group& g, uint8_t tag) { return PortableMatchTag(g, tag); }
inline uint32_t MatchEmpty(const Group& g) { return PortableMatchEmpty(g); }
inline uint32_t Match32x8(const uint32_t* lanes, uint32_t x) { return PortableMatch32x8(lanes, x); }

#endif

}  // namespace probe
}  // namespace s3fifo

#endif  // SRC_UTIL_SIMD_PROBE_H_
