// Fixed-size thread pool. Substrate for the parallel simulation runner (the
// analog of the paper's distributed computation platform) and for the
// concurrent-cache stress tests.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s3fifo {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw; wrap fallible work (the parallel
  // runner does its own exception capture).
  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished.
  void Wait();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_THREAD_POOL_H_
