#include "src/util/zipf.h"

#include <cmath>

#include "src/util/det_math.h"

namespace s3fifo {
namespace {

// log1p(x) / x, continuous at x = 0. Used so HIntegralInverse stays accurate
// when alpha is close to 1.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) {
    return DetLog1p(x) / x;
  }
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// expm1(x) / x, continuous at x = 0.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) {
    return DetExpm1(x) / x;
  }
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}

}  // namespace

ZipfDistribution::ZipfDistribution(uint64_t n, double alpha) : n_(n == 0 ? 1 : n), alpha_(alpha) {
  if (alpha_ < 1e-9) {
    // Uniform; Sample() special-cases this.
    h_integral_x1_ = h_integral_n_ = s_ = 0.0;
    return;
  }
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

// Integral of t^-alpha, i.e. (x^(1-alpha) - 1) / (1 - alpha), in a form that
// is stable for alpha near 1.
double ZipfDistribution::HIntegral(double x) const {
  const double log_x = DetLog(x);
  return Helper2((1.0 - alpha_) * log_x) * log_x;
}

double ZipfDistribution::H(double x) const { return DetExp(-alpha_ * DetLog(x)); }

double ZipfDistribution::HIntegralInverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) {
    t = -1.0;  // guard against round-off below the valid domain
  }
  return DetExp(Helper1(t) * x);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (alpha_ < 1e-9) {
    return 1 + rng.NextBounded(n_);
  }
  while (true) {
    const double u = h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= HIntegral(kd + 0.5) - H(kd)) {
      return k;
    }
  }
}

}  // namespace s3fifo
