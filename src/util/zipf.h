// Zipf(α) sampler over ranks [1, n] using rejection inversion (Hörmann &
// Derflinger). O(1) per draw for any n, unlike the naive CDF table which is
// O(n) memory and O(log n) per draw. This is what makes generating the
// paper's billion-scale synthetic traces tractable.
//
// All transcendental steps go through src/util/det_math.h, so a (n, alpha,
// seed) triple draws the identical rank sequence on every platform — the
// golden-trace hash test relies on this.
#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cstdint>

#include "src/util/rng.h"

namespace s3fifo {

class ZipfDistribution {
 public:
  // n: number of ranks; alpha: skew (> 0). alpha near 0 is handled by the
  // uniform fallback since rejection inversion degenerates there.
  ZipfDistribution(uint64_t n, double alpha);

  // Draws a rank in [1, n]; rank 1 is the most popular.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace s3fifo

#endif  // SRC_UTIL_ZIPF_H_
