#include "src/workload/dataset_profiles.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/hash.h"

namespace s3fifo {
namespace {

ZipfWorkloadConfig Base(uint64_t objects, uint64_t requests, double alpha) {
  ZipfWorkloadConfig c;
  c.num_objects = objects;
  c.num_requests = requests;
  c.alpha = alpha;
  return c;
}

std::vector<DatasetProfile> BuildProfiles() {
  std::vector<DatasetProfile> p;

  // Tuning note: each profile's knobs are fit against the Table 1 one-hit-
  // wonder triple (full trace / 10% / 1% sub-sequences). Levers: alpha and
  // the request:object ratio set how hot the Zipf core is (low ratio + low
  // alpha -> reuse at long range only: low full-trace OHW, high short-window
  // OHW); new_object_fraction injects genuine one-hit wonders (raises OHW
  // equally at all window lengths); scans add one-hit bursts; loops add
  // short-range reuse.

  // MSR (block, 2007): scans + moderate core (0.56 / 0.74 / 0.86).
  {
    DatasetProfile d{"msr", "block", Base(60000, 400000, 0.85), 6};
    d.base.scan_fraction = 0.0008;
    d.base.scan_length = 300;
    d.base.loop_fraction = 0.0004;
    d.base.loop_length = 300;
    d.base.loop_repeats = 3;
    d.base.write_fraction = 0.3;
    p.push_back(d);
  }
  // FIU (block, 2008-11): reuse only at long range (0.28 / 0.91 / 0.91).
  {
    DatasetProfile d{"fiu", "block", Base(120000, 420000, 0.7), 5};
    d.base.write_fraction = 0.5;
    p.push_back(d);
  }
  // CloudPhysics (block, 2015): (0.40 / 0.71 / 0.80).
  {
    DatasetProfile d{"cloudphysics", "block", Base(30000, 350000, 1.0), 8};
    d.base.scan_fraction = 0.0001;
    d.base.scan_length = 200;
    d.base.write_fraction = 0.25;
    d.base.burst_fraction = 0.1;
    p.push_back(d);
  }
  // CDN 1 (object, 2018): hot core + long tail of new objects
  // (0.42 / 0.58 / 0.70).
  {
    DatasetProfile d{"cdn1", "object", Base(15000, 450000, 1.35), 8};
    d.base.new_object_fraction = 0.006;
    d.base.size_sigma = 1.2;
    d.base.size_mean_bytes = 64 << 10;
    d.base.burst_fraction = 0.22;
    p.push_back(d);
  }
  // Tencent Photo (object, 2018): (0.55 / 0.66 / 0.74).
  {
    DatasetProfile d{"tencent_photo", "object", Base(12000, 250000, 1.25), 4};
    d.base.new_object_fraction = 0.035;
    d.base.size_sigma = 0.8;
    d.base.size_mean_bytes = 24 << 10;
    d.base.burst_fraction = 0.18;
    p.push_back(d);
  }
  // WikiMedia CDN (object, 2019): (0.46 / 0.60 / 0.80).
  {
    DatasetProfile d{"wiki", "object", Base(10000, 300000, 1.3), 4};
    d.base.new_object_fraction = 0.008;
    d.base.size_sigma = 1.4;
    d.base.size_mean_bytes = 48 << 10;
    d.base.burst_fraction = 0.2;
    p.push_back(d);
  }
  // Systor (block, 2017): low full-trace OHW, long-range reuse
  // (0.37 / 0.80 / 0.94).
  {
    DatasetProfile d{"systor", "block", Base(110000, 650000, 0.7), 5};
    d.base.scan_fraction = 0.0003;
    d.base.scan_length = 300;
    d.base.write_fraction = 0.45;
    d.base.burst_fraction = 0.1;
    p.push_back(d);
  }
  // Tencent CBS (block, 2020): (0.25 / 0.73 / 0.77).
  {
    DatasetProfile d{"tencent_cbs", "block", Base(50000, 260000, 0.8), 8};
    d.base.burst_fraction = 0.12;
    d.base.write_fraction = 0.35;
    p.push_back(d);
  }
  // Alibaba (block, 2020): (0.36 / 0.68 / 0.81).
  {
    DatasetProfile d{"alibaba", "block", Base(70000, 420000, 0.85), 8};
    d.base.scan_fraction = 0.0002;
    d.base.scan_length = 300;
    d.base.write_fraction = 0.3;
    d.base.burst_fraction = 0.2;
    p.push_back(d);
  }
  // Twitter (KV, 2020): extremely hot core (0.19 / 0.32 / 0.42).
  {
    DatasetProfile d{"twitter", "kv", Base(8000, 420000, 1.1), 8};
    d.base.new_object_fraction = 0.004;
    d.base.write_fraction = 0.1;
    d.base.delete_fraction = 0.01;
    d.base.size_mean_bytes = 330;
    d.base.size_sigma = 0.7;
    d.base.size_min_bytes = 16;
    d.base.burst_fraction = 0.5;
    d.base.burst_gap_max = 48;
    p.push_back(d);
  }
  // Social Network 1 (KV, 2020): hotter still (0.17 / 0.28 / 0.37).
  {
    DatasetProfile d{"socialnet", "kv", Base(8000, 480000, 1.15), 8};
    d.base.new_object_fraction = 0.004;
    d.base.write_fraction = 0.12;
    d.base.delete_fraction = 0.015;
    d.base.size_mean_bytes = 250;
    d.base.size_sigma = 0.6;
    d.base.size_min_bytes = 16;
    d.base.burst_fraction = 0.55;
    d.base.burst_gap_max = 48;
    p.push_back(d);
  }
  // CDN 2 (object, 2021): (0.49 / 0.58 / 0.64).
  {
    DatasetProfile d{"cdn2", "object", Base(12000, 350000, 1.35), 8};
    d.base.new_object_fraction = 0.008;
    d.base.size_sigma = 1.1;
    d.base.size_mean_bytes = 96 << 10;
    d.base.burst_fraction = 0.25;
    p.push_back(d);
  }
  // Meta KV (2022): flat curve — genuine one-hit wonders plus a hot core
  // (0.51 / 0.53 / 0.61).
  {
    DatasetProfile d{"meta_kv", "kv", Base(6000, 250000, 1.4), 4};
    d.base.new_object_fraction = 0.018;
    d.base.write_fraction = 0.2;
    d.base.delete_fraction = 0.02;
    d.base.size_mean_bytes = 4096;
    d.base.size_sigma = 0.9;
    d.base.burst_fraction = 0.35;
    p.push_back(d);
  }
  // Meta CDN (2023): very high one-hit-wonder (0.61 / 0.76 / 0.81).
  {
    DatasetProfile d{"meta_cdn", "object", Base(14000, 200000, 1.1), 3};
    d.base.new_object_fraction = 0.055;
    d.base.size_sigma = 1.3;
    d.base.size_mean_bytes = 512 << 10;
    d.base.burst_fraction = 0.08;
    p.push_back(d);
  }
  return p;
}

}  // namespace

const std::vector<DatasetProfile>& AllDatasetProfiles() {
  static const std::vector<DatasetProfile>* profiles =
      new std::vector<DatasetProfile>(BuildProfiles());
  return *profiles;
}

const DatasetProfile& DatasetByName(const std::string& name) {
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    if (d.name == name) {
      return d;
    }
  }
  throw std::out_of_range("unknown dataset profile: " + name);
}

// The effective generator config for one dataset instance. Shared by
// GenerateDatasetTrace and DatasetTraceSpec so the cache key always
// serializes exactly what the generator will run.
static ZipfWorkloadConfig EffectiveDatasetConfig(const DatasetProfile& profile,
                                                 uint32_t trace_index, double scale) {
  ZipfWorkloadConfig c = profile.base;
  scale = std::max(scale, 0.01);
  c.num_objects = std::max<uint64_t>(static_cast<uint64_t>(c.num_objects * scale), 1000);
  c.num_requests = std::max<uint64_t>(static_cast<uint64_t>(c.num_requests * scale), 5000);
  c.seed = Mix64((static_cast<uint64_t>(trace_index) << 32) ^ HashId(profile.name.size()) ^
                 profile.base.seed);
  // Mild per-tenant jitter: +-10% skew, +-25% footprint.
  const double jitter_a = 0.9 + 0.2 * ((c.seed >> 7) % 1000) / 1000.0;
  const double jitter_m = 0.75 + 0.5 * ((c.seed >> 17) % 1000) / 1000.0;
  c.alpha *= jitter_a;
  c.num_objects = std::max<uint64_t>(static_cast<uint64_t>(c.num_objects * jitter_m), 1000);
  return c;
}

Trace GenerateDatasetTrace(const DatasetProfile& profile, uint32_t trace_index, double scale) {
  Trace t = GenerateZipfTrace(EffectiveDatasetConfig(profile, trace_index, scale));
  t.set_name(profile.name + "/" + std::to_string(trace_index));
  return t;
}

TraceSpec DatasetTraceSpec(const DatasetProfile& profile, uint32_t trace_index, double scale) {
  TraceSpec spec = ZipfTraceSpec(EffectiveDatasetConfig(profile, trace_index, scale));
  spec.group = profile.name;
  spec.detail += ";name=" + profile.name + "/" + std::to_string(trace_index);
  return spec;
}

}  // namespace s3fifo
