// Synthetic stand-ins for the paper's 14 trace datasets (Table 1).
//
// Each profile is a workload-generator template whose knobs (Zipf skew,
// request/object ratio, scan/loop mix, new-object arrival rate, op mix,
// object sizes) are tuned so the distributional properties that drive the
// paper's conclusions — in particular the one-hit-wonder ratio of the full
// trace and of 10%/1% sub-sequences — land in the same regime as Table 1.
// Per-dataset trace instances differ by seed and mild parameter jitter, like
// per-tenant traces split from a shared cluster.
#ifndef SRC_WORKLOAD_DATASET_PROFILES_H_
#define SRC_WORKLOAD_DATASET_PROFILES_H_

#include <string>
#include <vector>

#include "src/workload/zipf_workload.h"

namespace s3fifo {

struct DatasetProfile {
  std::string name;        // e.g. "msr", "twitter"
  std::string cache_type;  // "block" | "kv" | "object"
  ZipfWorkloadConfig base;
  uint32_t num_traces = 4;  // instances per dataset at scale 1
};

// The 14 dataset profiles in Table 1 order.
const std::vector<DatasetProfile>& AllDatasetProfiles();

// Looks up a profile by name; throws std::out_of_range if unknown.
const DatasetProfile& DatasetByName(const std::string& name);

// Generates the trace_index-th instance of a dataset. `scale` multiplies the
// trace length and footprint (sub-1.0 values give quick smoke runs).
Trace GenerateDatasetTrace(const DatasetProfile& profile, uint32_t trace_index,
                           double scale = 1.0);

// Trace-cache spec for GenerateDatasetTrace(profile, trace_index, scale):
// the full base config plus the per-instance knobs, so a custom profile
// sharing a built-in's name cannot collide with it.
TraceSpec DatasetTraceSpec(const DatasetProfile& profile, uint32_t trace_index, double scale);

}  // namespace s3fifo

#endif  // SRC_WORKLOAD_DATASET_PROFILES_H_
