#include "src/workload/scan_workload.h"

namespace s3fifo {

Trace GenerateSequentialScan(uint64_t num_objects) {
  std::vector<Request> reqs;
  reqs.reserve(num_objects);
  for (uint64_t i = 0; i < num_objects; ++i) {
    Request r;
    r.id = i;
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs), "sequential_scan");
}

Trace GenerateLoop(uint64_t region, uint64_t num_requests) {
  std::vector<Request> reqs;
  reqs.reserve(num_requests);
  for (uint64_t i = 0; i < num_requests; ++i) {
    Request r;
    r.id = region == 0 ? 0 : i % region;
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs), "loop");
}

Trace GenerateTwoHitPattern(uint64_t num_objects, uint64_t reuse_distance) {
  // Emit object i at position p(i), and again reuse_distance slots later, by
  // interleaving: i, i+1, ..., i+D-1, i, i+D, i+1, ... A simple construction:
  // maintain a sliding window of D outstanding first-accesses.
  std::vector<Request> reqs;
  reqs.reserve(2 * num_objects);
  uint64_t t = 0;
  auto emit = [&](uint64_t id) {
    Request r;
    r.id = id;
    r.time = t++;
    reqs.push_back(r);
  };
  for (uint64_t i = 0; i < num_objects; ++i) {
    emit(i);
    if (i >= reuse_distance) {
      emit(i - reuse_distance);  // second (and last) access
    }
  }
  for (uint64_t i = num_objects >= reuse_distance ? num_objects - reuse_distance : 0;
       i < num_objects; ++i) {
    emit(i);
  }
  return Trace(std::move(reqs), "two_hit");
}

}  // namespace s3fifo
