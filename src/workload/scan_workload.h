// Focused access-pattern generators used by unit tests and adversarial
// benchmarks: pure sequential scans, cyclic loops, and the "every object is
// requested exactly twice, D apart" pattern the paper identifies as
// adversarial for space-partitioned algorithms (§5.2).
#ifndef SRC_WORKLOAD_SCAN_WORKLOAD_H_
#define SRC_WORKLOAD_SCAN_WORKLOAD_H_

#include <cstdint>

#include "src/trace/trace.h"

namespace s3fifo {

// ids 0..n-1 each requested once, in order.
Trace GenerateSequentialScan(uint64_t num_objects);

// ids 0..region-1 swept repeatedly until num_requests requests are emitted
// (the classic LRU-thrashing loop).
Trace GenerateLoop(uint64_t region, uint64_t num_requests);

// Every object requested exactly twice, the second access lagging the first
// by `reuse_distance` insertion steps. Measured in intervening *distinct*
// objects the steady-state reuse distance is ~2x reuse_distance (the window
// holds both upcoming first accesses and trailing second accesses).
// Adversarial for S3-FIFO when that distance exceeds the small queue (§5.2
// "Adversarial workloads").
Trace GenerateTwoHitPattern(uint64_t num_objects, uint64_t reuse_distance);

}  // namespace s3fifo

#endif  // SRC_WORKLOAD_SCAN_WORKLOAD_H_
