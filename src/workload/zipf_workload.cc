#include "src/workload/zipf_workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>

#include "src/util/det_math.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace {

// Id-space layout: Zipf ranks map into [0, num_objects); new objects, scans
// and loops draw from disjoint high ranges so they never collide with the
// popularity-ranked universe.
constexpr uint64_t kNewObjectBase = 1ULL << 40;
constexpr uint64_t kScanBase = 1ULL << 41;
constexpr uint64_t kLoopBase = 1ULL << 42;

class SizeSampler {
 public:
  explicit SizeSampler(const ZipfWorkloadConfig& config) : config_(config) {
    if (config_.size_sigma > 0.0) {
      mu_ = DetLog(static_cast<double>(config_.size_mean_bytes)) -
            config_.size_sigma * config_.size_sigma / 2.0;
    }
  }

  // Sizes are a deterministic function of the id, so every request to an
  // object sees the same size (as in real traces). Box-Muller through
  // det_math (std::sqrt is IEEE-correctly-rounded, so it is already
  // portable) keeps the sampled bytes bit-identical across platforms.
  uint32_t SizeOf(uint64_t id) const {
    if (config_.size_sigma <= 0.0) {
      return config_.size_mean_bytes;
    }
    // Box-Muller on two id-derived uniforms.
    const double u1 =
        (static_cast<double>(Mix64(id ^ 0x6a09e667f3bcc909ULL) >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = static_cast<double>(Mix64(id ^ 0xbb67ae8584caa73bULL) >> 11) * 0x1.0p-53;
    const double z = std::sqrt(-2.0 * DetLog(u1)) * DetCos(6.283185307179586 * u2);
    const double size = DetExp(mu_ + config_.size_sigma * z);
    return static_cast<uint32_t>(
        std::clamp(size, static_cast<double>(config_.size_min_bytes),
                   static_cast<double>(config_.size_max_bytes)));
  }

 private:
  const ZipfWorkloadConfig& config_;
  double mu_ = 0.0;
};

}  // namespace

Trace GenerateZipfTrace(const ZipfWorkloadConfig& config) {
  Rng rng(config.seed);
  ZipfDistribution zipf(config.num_objects, config.alpha);
  SizeSampler sizes(config);

  std::vector<Request> reqs;
  reqs.reserve(config.num_requests);

  uint64_t next_new_object = kNewObjectBase + (config.seed << 20);
  uint64_t next_scan_id = kScanBase + (config.seed << 20);
  uint64_t next_loop_region = kLoopBase + (config.seed << 20);

  // Pending burst re-emissions: (due request index, id), soonest first.
  using Pending = std::pair<uint64_t, uint64_t>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> bursts;

  // Residual state for in-progress scan / loop bursts.
  uint64_t scan_remaining = 0;
  uint64_t scan_cursor = 0;
  uint64_t loop_remaining = 0;
  uint64_t loop_cursor = 0;
  uint64_t loop_region_start = 0;
  const uint64_t loop_total =
      config.loop_length * std::max<uint32_t>(config.loop_repeats, 1);

  auto scrambled = [&](uint64_t raw) {
    if (!config.scramble_ids) {
      return raw;
    }
    // A fixed bijective-enough scramble: ids stay unique with overwhelming
    // probability given the sparse 64-bit space.
    return Mix64(raw ^ (config.seed * 0x9e3779b97f4a7c15ULL));
  };

  while (reqs.size() < config.num_requests) {
    Request r;
    r.time = reqs.size();

    if (!bursts.empty() && bursts.top().first <= reqs.size()) {
      r.id = bursts.top().second;
      bursts.pop();
      r.size = sizes.SizeOf(r.id);
      reqs.push_back(r);
      continue;
    }
    if (scan_remaining > 0) {
      r.id = scrambled(scan_cursor++);
      --scan_remaining;
    } else if (loop_remaining > 0) {
      r.id = scrambled(loop_region_start + (loop_cursor % config.loop_length));
      ++loop_cursor;
      --loop_remaining;
    } else {
      const double dice = rng.NextDouble();
      if (dice < config.scan_fraction && config.scan_length > 0) {
        scan_cursor = next_scan_id;
        next_scan_id += config.scan_length;
        scan_remaining = config.scan_length;
        r.id = scrambled(scan_cursor++);
        --scan_remaining;
      } else if (dice < config.scan_fraction + config.loop_fraction && config.loop_length > 0) {
        loop_region_start = next_loop_region;
        next_loop_region += config.loop_length;
        loop_cursor = 0;
        loop_remaining = loop_total;
        r.id = scrambled(loop_region_start);
        ++loop_cursor;
        --loop_remaining;
      } else if (dice <
                 config.scan_fraction + config.loop_fraction + config.new_object_fraction) {
        r.id = scrambled(next_new_object++);
      } else {
        // Zipf rank 1..n mapped into [0, n).
        r.id = scrambled(zipf.Sample(rng) - 1);
        const double op_dice = rng.NextDouble();
        if (op_dice < config.delete_fraction) {
          r.op = OpType::kDelete;
        } else if (op_dice < config.delete_fraction + config.write_fraction) {
          r.op = OpType::kSet;
        }
        if (r.op != OpType::kDelete && config.burst_fraction > 0.0 &&
            rng.NextBool(config.burst_fraction)) {
          const uint64_t gap = 1 + rng.NextBounded(std::max<uint32_t>(config.burst_gap_max, 1));
          bursts.emplace(reqs.size() + gap, r.id);
        }
      }
    }
    r.size = sizes.SizeOf(r.id);
    reqs.push_back(r);
  }

  return Trace(std::move(reqs));
}

std::string ZipfConfigSpecString(const ZipfWorkloadConfig& c) {
  // %.17g round-trips any double exactly; every generator-visible field is
  // serialized so equal strings imply byte-identical GenerateZipfTrace output.
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "objects=%llu;requests=%llu;alpha=%.17g;new=%.17g;"
      "scan=%.17g;scan_len=%llu;loop=%.17g;loop_len=%llu;loop_rep=%lu;"
      "burst=%.17g;burst_gap=%lu;write=%.17g;delete=%.17g;"
      "size_mean=%lu;size_sigma=%.17g;size_min=%lu;size_max=%lu;"
      "seed=%llu;scramble=%d",
      static_cast<unsigned long long>(c.num_objects),
      static_cast<unsigned long long>(c.num_requests), c.alpha, c.new_object_fraction,
      c.scan_fraction, static_cast<unsigned long long>(c.scan_length), c.loop_fraction,
      static_cast<unsigned long long>(c.loop_length), static_cast<unsigned long>(c.loop_repeats),
      c.burst_fraction, static_cast<unsigned long>(c.burst_gap_max), c.write_fraction,
      c.delete_fraction, static_cast<unsigned long>(c.size_mean_bytes), c.size_sigma,
      static_cast<unsigned long>(c.size_min_bytes), static_cast<unsigned long>(c.size_max_bytes),
      static_cast<unsigned long long>(c.seed), c.scramble_ids ? 1 : 0);
  return std::string(buf);
}

TraceSpec ZipfTraceSpec(const ZipfWorkloadConfig& config) {
  return TraceSpec{"zipf", ZipfConfigSpecString(config), kTraceGeneratorVersion};
}

}  // namespace s3fifo
