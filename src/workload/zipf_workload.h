// Synthetic workload generation.
//
// The base process is the independent reference model (IRM) over a Zipf(α)
// popularity distribution — the model the paper uses for its synthetic
// analyses (§3.1, Fig. 2) and throughput benchmark (§5.3). On top of IRM the
// generator can mix in the trace features that shape real datasets:
//
//  * new-object arrivals — a stream of never-before-seen ids (CDN-style
//    one-hit wonders beyond what Zipf's tail provides);
//  * scans — runs of sequential ids touched once (block workloads);
//  * loops — repeated sequential sweeps over a region (block workloads);
//  * writes and deletes (KV workloads; deletes shortly after inserts,
//    matching the observation in §4.2);
//  * log-normal object sizes (for byte miss ratio and flash experiments).
#ifndef SRC_WORKLOAD_ZIPF_WORKLOAD_H_
#define SRC_WORKLOAD_ZIPF_WORKLOAD_H_

#include <cstdint>

#include "src/trace/trace.h"
#include "src/trace/trace_cache.h"

namespace s3fifo {

struct ZipfWorkloadConfig {
  uint64_t num_objects = 100000;  // Zipf universe (popularity-ranked ids)
  uint64_t num_requests = 1000000;
  double alpha = 1.0;  // Zipf skew

  // Fraction of requests that address a brand-new object id.
  double new_object_fraction = 0.0;

  // Fraction of requests that belong to sequential scans of scan_length.
  double scan_fraction = 0.0;
  uint64_t scan_length = 1000;

  // Fraction of requests that belong to looping sweeps (re-scanning the same
  // region loop_repeats times).
  double loop_fraction = 0.0;
  uint64_t loop_length = 500;
  uint32_t loop_repeats = 4;

  // Temporal burstiness: with this probability a Zipf-drawn request is
  // re-emitted once more after a short random gap (1..burst_gap_max
  // requests). Production KV traces show strong short-range reuse that the
  // pure independent reference model lacks (§3.1's production-vs-Zipf gap);
  // bursts close it.
  double burst_fraction = 0.0;
  uint32_t burst_gap_max = 32;

  // Operation mix (applied to non-scan requests).
  double write_fraction = 0.0;
  double delete_fraction = 0.0;

  // Object sizes: log-normal(log(size_mean_bytes) - sigma^2/2, sigma), so the
  // mean is size_mean_bytes; sigma 0 = fixed size.
  uint32_t size_mean_bytes = 4096;
  double size_sigma = 0.0;
  uint32_t size_min_bytes = 64;
  uint32_t size_max_bytes = 4 << 20;

  uint64_t seed = 1;
  // Scrambles rank->id mapping so ids are not ordered by popularity.
  bool scramble_ids = true;
};

// Generates a trace according to the configuration. Deterministic in `seed`.
Trace GenerateZipfTrace(const ZipfWorkloadConfig& config);

// Canonical serialization of every field that affects GenerateZipfTrace's
// output — equal strings mean byte-identical traces (at a fixed
// kTraceGeneratorVersion).
std::string ZipfConfigSpecString(const ZipfWorkloadConfig& config);

// Trace-cache spec for GenerateZipfTrace(config).
TraceSpec ZipfTraceSpec(const ZipfWorkloadConfig& config);

}  // namespace s3fifo

#endif  // SRC_WORKLOAD_ZIPF_WORKLOAD_H_
