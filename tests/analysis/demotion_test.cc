#include "src/analysis/demotion.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/trace/next_access.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace AnnotatedZipf(uint64_t seed, double new_frac = 0.15) {
  ZipfWorkloadConfig c;
  c.num_objects = 1500;
  c.num_requests = 50000;
  c.alpha = 1.0;
  c.new_object_fraction = new_frac;
  c.seed = seed;
  Trace t = GenerateZipfTrace(c);
  AnnotateNextAccess(t);
  return t;
}

CacheConfig Config(uint64_t cap, const std::string& params = "") {
  CacheConfig c;
  c.capacity = cap;
  c.params = params;
  return c;
}

TEST(DemotionTest, SupportedPoliciesExposeListeners) {
  for (const char* name : {"s3fifo", "tinylfu", "arc"}) {
    auto cache = CreateCache(name, Config(100));
    EXPECT_TRUE(TrySetDemotionListener(*cache, [](const DemotionEvent&) {})) << name;
  }
  auto lru = CreateCache("lru", Config(100));
  EXPECT_FALSE(TrySetDemotionListener(*lru, [](const DemotionEvent&) {}));
}

TEST(DemotionTest, UnsupportedPolicyThrows) {
  Trace t = AnnotatedZipf(1);
  auto lru = CreateCache("lru", Config(100));
  EXPECT_THROW(MeasureDemotion(t, *lru, 100.0), std::invalid_argument);
}

TEST(DemotionTest, UnannotatedTraceThrows) {
  ZipfWorkloadConfig c;
  c.num_objects = 100;
  c.num_requests = 1000;
  Trace t = GenerateZipfTrace(c);
  auto s3 = CreateCache("s3fifo", Config(50));
  EXPECT_THROW(MeasureDemotion(t, *s3, 100.0), std::invalid_argument);
}

TEST(DemotionTest, S3FifoDemotionIsFasterThanLruEviction) {
  // §6.1: the small queue demotes in ~small-queue time, i.e. ~10x faster
  // than the LRU eviction age => normalized speed >> 1.
  Trace t = AnnotatedZipf(2);
  const CacheConfig config = Config(150);
  const double lru_age = LruEvictionAge(t, config);
  ASSERT_GT(lru_age, 0.0);
  auto s3 = CreateCache("s3fifo", config);
  const DemotionMetrics m = MeasureDemotion(t, *s3, lru_age);
  EXPECT_GT(m.demotions, 0u);
  EXPECT_GT(m.normalized_speed, 2.0);
}

TEST(DemotionTest, SmallerSmallQueueDemotesFaster) {
  // Fig. 10: reducing S always increases demotion speed.
  Trace t = AnnotatedZipf(3);
  const CacheConfig base = Config(200);
  const double lru_age = LruEvictionAge(t, base);
  auto s3_small = CreateCache("s3fifo", Config(200, "small_ratio=0.02"));
  auto s3_large = CreateCache("s3fifo", Config(200, "small_ratio=0.4"));
  const DemotionMetrics fast = MeasureDemotion(t, *s3_small, lru_age);
  const DemotionMetrics slow = MeasureDemotion(t, *s3_large, lru_age);
  EXPECT_GT(fast.normalized_speed, slow.normalized_speed);
}

TEST(DemotionTest, PrecisionIsAFraction) {
  Trace t = AnnotatedZipf(4);
  const CacheConfig config = Config(150);
  const double lru_age = LruEvictionAge(t, config);
  for (const char* name : {"s3fifo", "tinylfu", "arc"}) {
    auto cache = CreateCache(name, config);
    const DemotionMetrics m = MeasureDemotion(t, *cache, lru_age);
    EXPECT_GE(m.precision, 0.0) << name;
    EXPECT_LE(m.precision, 1.0) << name;
    EXPECT_GT(m.demotions + m.promotions, 0u) << name;
    EXPECT_GT(m.miss_ratio, 0.0) << name;
    EXPECT_LT(m.miss_ratio, 1.0) << name;
  }
}

TEST(DemotionTest, OneHitWonderDemotionsAreMostlyCorrect) {
  // With many true one-hit wonders, demoting them early is almost always
  // the right call -> high precision.
  Trace t = AnnotatedZipf(5, /*new_frac=*/0.4);
  const CacheConfig config = Config(150);
  const double lru_age = LruEvictionAge(t, config);
  auto s3 = CreateCache("s3fifo", config);
  const DemotionMetrics m = MeasureDemotion(t, *s3, lru_age);
  EXPECT_GT(m.precision, 0.6);
}

}  // namespace
}  // namespace s3fifo
