#include "src/analysis/eviction_age.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace HighOhwTrace(uint64_t seed) {
  ZipfWorkloadConfig c;
  c.num_objects = 1000;
  c.num_requests = 40000;
  c.alpha = 0.8;
  c.new_object_fraction = 0.25;
  c.seed = seed;
  Trace t = GenerateZipfTrace(c);
  AnnotateNextAccess(t);
  return t;
}

TEST(EvictionProfileTest, ScanEvictionsAreAllZeroFrequency) {
  Trace scan = GenerateSequentialScan(5000);
  CacheConfig config;
  config.capacity = 100;
  auto lru = CreateCache("lru", config);
  const EvictionProfile p = CollectEvictionProfile(scan, *lru);
  ASSERT_GT(p.evictions, 0u);
  EXPECT_DOUBLE_EQ(p.freq_at_eviction[0], 1.0);  // every eviction a one-hit wonder
}

TEST(EvictionProfileTest, HistogramSumsToOne) {
  Trace t = HighOhwTrace(1);
  CacheConfig config;
  config.capacity = 100;
  auto lru = CreateCache("lru", config);
  const EvictionProfile p = CollectEvictionProfile(t, *lru);
  double sum = 0;
  for (double f : p.freq_at_eviction) {
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EvictionProfileTest, LruEvictionAgeNearCacheSizeOnScan) {
  // On a pure miss stream, an object inserted into LRU is evicted exactly
  // `capacity` insertions later.
  Trace scan = GenerateSequentialScan(5000);
  CacheConfig config;
  config.capacity = 100;
  auto lru = CreateCache("lru", config);
  const EvictionProfile p = CollectEvictionProfile(scan, *lru);
  EXPECT_NEAR(p.mean_insert_age, 100.0, 1.0);
  EXPECT_NEAR(p.mean_last_access_age, 100.0, 1.0);
}

TEST(EvictionProfileTest, MostEvictionsAreOneHitWondersAtSmallSize) {
  // The Fig. 4 observation: at a cache far smaller than the footprint, the
  // bulk of LRU- and Belady-evicted objects saw no reuse.
  Trace t = HighOhwTrace(2);
  CacheConfig config;
  config.capacity = 50;  // ~0.3% of footprint
  for (const char* policy : {"lru", "belady"}) {
    auto cache = CreateCache(policy, config);
    const EvictionProfile p = CollectEvictionProfile(t, *cache);
    EXPECT_GT(p.freq_at_eviction[0], 0.5) << policy;
  }
}

TEST(EvictionProfileTest, MissRatioReportedMatchesSimulator) {
  Trace t = HighOhwTrace(3);
  CacheConfig config;
  config.capacity = 100;
  auto a = CreateCache("s3fifo", config);
  const EvictionProfile p = CollectEvictionProfile(t, *a);
  auto b = CreateCache("s3fifo", config);
  const SimResult r = Simulate(t, *b);
  EXPECT_DOUBLE_EQ(p.miss_ratio, r.MissRatio());
}

TEST(EvictionProfileTest, MaxBucketAggregatesTail) {
  // FIFO evicts hot objects regardless of hits, so popular Zipf objects
  // reach eviction with many accesses — they must land in the last bucket.
  ZipfWorkloadConfig zc;
  zc.num_objects = 1000;
  zc.num_requests = 40000;
  zc.alpha = 1.2;
  zc.seed = 4;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 100;
  auto fifo = CreateCache("fifo", config);
  const EvictionProfile p = CollectEvictionProfile(t, *fifo, /*max_freq_bucket=*/4);
  ASSERT_EQ(p.freq_at_eviction.size(), 5u);
  EXPECT_GT(p.freq_at_eviction[4], 0.0);  // hits overflow into the last bucket
}

}  // namespace
}  // namespace s3fifo
