// Differential MRC test wall: the one-pass engine must reproduce the
// brute-force per-size simulations COUNT-FOR-COUNT — not just matching miss
// ratios — for every supported policy, across workload shapes, seeds, and
// degenerate size grids. These tests are the license for the bench binaries
// to default to --mrc=onepass on published figures.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/mrc.h"
#include "src/analysis/mrc_engine.h"
#include "src/analysis/shards.h"
#include "src/check/trace_fuzzer.h"
#include "src/trace/trace_view.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// The epsilon EXPERIMENTS.md documents for the s3fifo variants. The engine
// replicates the ghost machinery exactly, so the bound is 0 — pinned here so
// any future relaxation has to edit a named constant in the test wall.
constexpr double kS3FifoCurveEpsilon = 0.0;

Trace MixedZipf(uint64_t seed, uint64_t num_requests = 60000) {
  ZipfWorkloadConfig c;
  c.num_objects = 4000;
  c.num_requests = num_requests;
  c.alpha = 1.0;
  c.write_fraction = 0.1;
  c.delete_fraction = 0.02;
  c.burst_fraction = 0.1;
  c.seed = seed;
  return GenerateZipfTrace(c);
}

Trace FuzzTrace(uint64_t seed, uint64_t num_requests = 30000) {
  check::FuzzConfig config;
  config.seed = seed;
  config.num_requests = num_requests;
  config.capacity = 128;
  config.count_based = true;
  return Trace(check::GenerateFuzzRequests(config), "fuzz");
}

std::vector<uint64_t> DefaultGrid() { return {16, 64, 128, 256, 512, 1024, 3000}; }

// Asserts per-size count equality between the one-pass curve and the
// brute-force reference, with `epsilon` as the documented bound on the
// derived miss ratios (0 for exact policies).
void ExpectOnePassMatchesBrute(const Trace& trace, const std::string& policy,
                               const std::vector<uint64_t>& sizes, const CacheConfig& config,
                               double epsilon, uint64_t warmup = 0) {
  const TraceView view = TraceView::Borrow(trace);
  const MrcCurve onepass = OnePassMrc(view, policy, sizes, config, warmup);
  const std::vector<SimResult> brute = ComputeMrcResults(view, policy, sizes, config, warmup);
  ASSERT_EQ(onepass.results.size(), sizes.size());
  ASSERT_EQ(brute.size(), sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    const SimResult& a = onepass.results[i];
    const SimResult& b = brute[i];
    EXPECT_NEAR(onepass.miss_ratios[i], b.MissRatio(), epsilon)
        << policy << " size=" << sizes[i];
    EXPECT_EQ(a.requests, b.requests) << policy << " size=" << sizes[i];
    EXPECT_EQ(a.hits, b.hits) << policy << " size=" << sizes[i];
    EXPECT_EQ(a.misses, b.misses) << policy << " size=" << sizes[i];
    EXPECT_EQ(a.bytes_requested, b.bytes_requested) << policy << " size=" << sizes[i];
    EXPECT_EQ(a.bytes_missed, b.bytes_missed) << policy << " size=" << sizes[i];
  }
  EXPECT_TRUE(onepass.exact);
}

CacheConfig CountConfig(const std::string& params = "") {
  CacheConfig config;
  config.capacity = 1;  // overridden per grid size
  config.count_based = true;
  config.params = params;
  return config;
}

TEST(MrcEngineTest, FifoExactOnZipfAcrossSeeds) {
  for (const uint64_t seed : {1, 7, 23}) {
    ExpectOnePassMatchesBrute(MixedZipf(seed), "fifo", DefaultGrid(), CountConfig(), 0.0);
  }
}

TEST(MrcEngineTest, ClockExactOnZipfAcrossSeeds) {
  for (const uint64_t seed : {2, 11}) {
    ExpectOnePassMatchesBrute(MixedZipf(seed), "clock", DefaultGrid(), CountConfig(), 0.0);
  }
}

TEST(MrcEngineTest, ClockExactWithWiderCounters) {
  ExpectOnePassMatchesBrute(MixedZipf(3), "clock", DefaultGrid(), CountConfig("bits=3"), 0.0);
}

TEST(MrcEngineTest, SieveExactOnZipfAcrossSeeds) {
  for (const uint64_t seed : {4, 19}) {
    ExpectOnePassMatchesBrute(MixedZipf(seed), "sieve", DefaultGrid(), CountConfig(), 0.0);
  }
}

TEST(MrcEngineTest, S3FifoWithinPinnedEpsilonOnZipf) {
  for (const uint64_t seed : {5, 13}) {
    ExpectOnePassMatchesBrute(MixedZipf(seed), "s3fifo", DefaultGrid(), CountConfig(),
                              kS3FifoCurveEpsilon);
  }
}

TEST(MrcEngineTest, S3FifoNonDefaultParams) {
  ExpectOnePassMatchesBrute(MixedZipf(6), "s3fifo", DefaultGrid(),
                            CountConfig("small_ratio=0.25,move_to_main_threshold=1,max_freq=7"),
                            kS3FifoCurveEpsilon);
  ExpectOnePassMatchesBrute(MixedZipf(8), "s3fifo", DefaultGrid(),
                            CountConfig("ghost_ratio=0.5"), kS3FifoCurveEpsilon);
}

TEST(MrcEngineTest, S3FifoDWithinPinnedEpsilonOnZipf) {
  for (const uint64_t seed : {9, 17}) {
    ExpectOnePassMatchesBrute(MixedZipf(seed), "s3fifo-d", DefaultGrid(), CountConfig(),
                              kS3FifoCurveEpsilon);
  }
}

TEST(MrcEngineTest, S3FifoDAggressiveAdaptation) {
  // Low rebalance threshold + large steps makes the adaptive state machine
  // fire constantly, exercising MaybeRebalance at every grid size.
  ExpectOnePassMatchesBrute(MixedZipf(10), "s3fifo-d", DefaultGrid(),
                            CountConfig("adapt_min_hits=5,adapt_step_ratio=0.05"),
                            kS3FifoCurveEpsilon);
}

TEST(MrcEngineTest, ScanAndLoopWorkloads) {
  const Trace scan = GenerateSequentialScan(20000);
  const Trace loop = GenerateLoop(700, 40000);
  const Trace twohit = GenerateTwoHitPattern(5000, 300);
  for (const std::string policy : {"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"}) {
    ExpectOnePassMatchesBrute(scan, policy, {64, 256, 1024}, CountConfig(), 0.0);
    ExpectOnePassMatchesBrute(loop, policy, {100, 350, 700, 1400}, CountConfig(), 0.0);
    ExpectOnePassMatchesBrute(twohit, policy, {64, 600, 1200}, CountConfig(), 0.0);
  }
}

TEST(MrcEngineTest, DatasetProfileWorkload) {
  const DatasetProfile& d = AllDatasetProfiles().front();
  const Trace trace = GenerateDatasetTrace(d, 0, 0.03);
  const uint64_t footprint = trace.Stats().num_objects;
  const std::vector<uint64_t> sizes = {footprint / 100 + 1, footprint / 10 + 1, footprint / 3 + 1};
  for (const std::string policy : {"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"}) {
    ExpectOnePassMatchesBrute(trace, policy, sizes, CountConfig(),
                              policy.rfind("s3fifo", 0) == 0 ? kS3FifoCurveEpsilon : 0.0);
  }
}

TEST(MrcEngineTest, FuzzedTracesWithDeletesAndSets) {
  for (const uint64_t seed : {1, 2, 3}) {
    const Trace trace = FuzzTrace(seed);
    for (const std::string policy : {"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"}) {
      ExpectOnePassMatchesBrute(trace, policy, {8, 32, 128, 512}, CountConfig(), 0.0);
    }
  }
}

TEST(MrcEngineTest, DegenerateGrids) {
  const Trace trace = MixedZipf(21, 20000);
  const uint64_t footprint = TraceView::Borrow(trace).stats().num_objects;
  for (const std::string policy : {"fifo", "clock", "sieve"}) {
    // Size 1: every eviction decision happens on every request.
    ExpectOnePassMatchesBrute(trace, policy, {1}, CountConfig(), 0.0);
    // Larger than the footprint: no evictions, pure cold misses.
    ExpectOnePassMatchesBrute(trace, policy, {4 * footprint}, CountConfig(), 0.0);
    // Single-element and duplicate-entry grids.
    ExpectOnePassMatchesBrute(trace, policy, {97}, CountConfig(), 0.0);
    ExpectOnePassMatchesBrute(trace, policy, {64, 64, 16, 64, 16}, CountConfig(), 0.0);
  }
  // The s3fifo variants need capacity >= 2 for a meaningful small/main split
  // but must still agree on footprint-dwarfing and duplicated sizes.
  for (const std::string policy : {"s3fifo", "s3fifo-d"}) {
    ExpectOnePassMatchesBrute(trace, policy, {4 * footprint}, CountConfig(),
                              kS3FifoCurveEpsilon);
    ExpectOnePassMatchesBrute(trace, policy, {64, 64, 16, 64, 16}, CountConfig(),
                              kS3FifoCurveEpsilon);
  }
}

TEST(MrcEngineTest, UnsortedGridKeepsRequestedOrder) {
  const Trace trace = MixedZipf(22, 20000);
  const std::vector<uint64_t> sizes = {512, 16, 128, 16};
  const MrcCurve curve = OnePassMrc(TraceView::Borrow(trace), "fifo", sizes, CountConfig());
  ASSERT_EQ(curve.sizes, sizes);
  ASSERT_EQ(curve.results.size(), sizes.size());
  // Duplicate entries carry identical results; order matches the request.
  EXPECT_EQ(curve.results[1].misses, curve.results[3].misses);
  EXPECT_GE(curve.miss_ratios[1], curve.miss_ratios[0]);  // 16 misses more than 512
}

TEST(MrcEngineTest, WarmupExclusionMatchesBrute) {
  const Trace trace = MixedZipf(25, 30000);
  for (const std::string policy : {"fifo", "sieve", "s3fifo"}) {
    ExpectOnePassMatchesBrute(trace, policy, {32, 256, 1024}, CountConfig(), 0.0,
                              /*warmup=*/10000);
  }
}

TEST(MrcEngineTest, GridWiderThanOnePassChunk) {
  // 70 distinct sizes forces two 64-wide passes; results must still line up
  // with brute force entry for entry.
  const Trace trace = MixedZipf(26, 15000);
  std::vector<uint64_t> sizes;
  for (uint64_t s = 1; s <= 70; ++s) {
    sizes.push_back(s * 13);
  }
  ExpectOnePassMatchesBrute(trace, "fifo", sizes, CountConfig(), 0.0);
  ExpectOnePassMatchesBrute(trace, "s3fifo", sizes, CountConfig(), kS3FifoCurveEpsilon);
}

TEST(MrcEngineTest, SupportsMatrix) {
  EXPECT_TRUE(MrcEngineSupports("fifo", CountConfig()));
  EXPECT_TRUE(MrcEngineSupports("clock", CountConfig("bits=8")));
  EXPECT_TRUE(MrcEngineSupports("sieve", CountConfig()));
  EXPECT_TRUE(MrcEngineSupports("s3fifo", CountConfig()));
  EXPECT_TRUE(MrcEngineSupports("s3fifo-d", CountConfig("adapt_min_hits=10")));

  EXPECT_FALSE(MrcEngineSupports("lru", CountConfig()));
  EXPECT_FALSE(MrcEngineSupports("arc", CountConfig()));
  EXPECT_FALSE(MrcEngineSupports("s3fifo", CountConfig("ghost_type=table")));
  EXPECT_FALSE(MrcEngineSupports("s3fifo", CountConfig("small_lru=1")));
  EXPECT_FALSE(MrcEngineSupports("s3fifo", CountConfig("main_lru=1")));
  EXPECT_FALSE(MrcEngineSupports("s3fifo", CountConfig("main_sieve=1")));
  CacheConfig byte_config = CountConfig();
  byte_config.count_based = false;
  EXPECT_FALSE(MrcEngineSupports("fifo", byte_config));
}

TEST(MrcEngineTest, OnePassThrowsOnUnsupportedOrBadGrid) {
  const Trace trace = MixedZipf(27, 1000);
  const TraceView view = TraceView::Borrow(trace);
  EXPECT_THROW(OnePassMrc(view, "lru", {16}, CountConfig()), std::invalid_argument);
  EXPECT_THROW(OnePassMrc(view, "fifo", {16, 0, 64}, CountConfig()), std::invalid_argument);
}

TEST(MrcEngineTest, ParseMrcModeRoundTrip) {
  EXPECT_EQ(ParseMrcMode("auto"), MrcMode::kAuto);
  EXPECT_EQ(ParseMrcMode("onepass"), MrcMode::kAuto);
  EXPECT_EQ(ParseMrcMode("brute"), MrcMode::kBrute);
  EXPECT_EQ(ParseMrcMode("shards"), MrcMode::kShards);
  EXPECT_THROW(ParseMrcMode("fast"), std::invalid_argument);
}

TEST(MrcEngineTest, AutoModeFallsBackToBruteForUnsupportedPolicies) {
  const Trace trace = MixedZipf(28, 20000);
  const TraceView view = TraceView::Borrow(trace);
  const std::vector<uint64_t> sizes = {64, 256};
  MrcOptions options;
  options.mode = MrcMode::kAuto;
  const MrcCurve curve = ComputeMrcCurve(view, "lru", sizes, options);
  EXPECT_TRUE(curve.exact);
  const std::vector<SimResult> brute = ComputeMrcResults(view, "lru", sizes);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(curve.results[i].misses, brute[i].misses);
  }
}

TEST(MrcEngineTest, DifferentialWallBites) {
  // Sanity-check the comparator itself: a curve from a *different* policy
  // must NOT pass the equality gauntlet — i.e. the test wall can fail.
  // (A pure loop won't do: fifo and sieve both miss 100% there. A zipf mix
  // separates them through sieve's visited bits.)
  const Trace trace = MixedZipf(29, 30000);
  const TraceView view = TraceView::Borrow(trace);
  const MrcCurve fifo = OnePassMrc(view, "fifo", {100}, CountConfig());
  const std::vector<SimResult> sieve = ComputeMrcResults(view, "sieve", {100}, CountConfig());
  EXPECT_NE(fifo.results[0].misses, sieve[0].misses);
}

}  // namespace
}  // namespace s3fifo
