// Golden MRC fingerprints: pin the exact per-size hit counts behind the
// committed fig06/fig07 configurations (dataset-profile traces at the
// SweepCapacity sizes), golden_trace_test-style.
//
// Every quantity here is deterministic — the traces come from the in-repo
// generators (det_math + xoshiro) and the one-pass engine is pinned against
// brute force by mrc_engine_test — so these constants must reproduce on
// every platform. If one changes, a hot-path "optimization" perturbed the
// published curves (fix that), or a policy's semantics changed deliberately
// (update the constant in the same PR that documents the change).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/sweep.h"
#include "src/analysis/mrc_engine.h"
#include "src/trace/trace_view.h"
#include "src/workload/dataset_profiles.h"

namespace s3fifo {
namespace {

// One fig06/fig07 cell: dataset trace 0 at test scale, large (10%) and
// small (1%) SweepCapacity sizes — the same formula the sweep drivers use.
struct GoldenCase {
  const char* dataset;
  const char* policy;
  uint64_t large_hits;
  uint64_t small_hits;
};

constexpr double kGoldenScale = 0.05;

void CheckGolden(const GoldenCase& c) {
  const Trace trace = GenerateDatasetTrace(DatasetByName(c.dataset), 0, kGoldenScale);
  const TraceView view = TraceView::Borrow(trace);
  const uint64_t footprint = view.stats().num_objects;
  const std::vector<uint64_t> sizes = {SweepCapacity(footprint, true),
                                       SweepCapacity(footprint, false)};
  const MrcCurve curve = OnePassMrc(view, c.policy, sizes);
  EXPECT_EQ(curve.results[0].hits, c.large_hits)
      << c.dataset << "/" << c.policy << " large capacity " << sizes[0];
  EXPECT_EQ(curve.results[1].hits, c.small_hits)
      << c.dataset << "/" << c.policy << " small capacity " << sizes[1];
}

TEST(MrcGoldenTest, Fig06Fig07HitCountFingerprints) {
  const std::vector<GoldenCase> cases = {
      {"cdn1", "fifo", 19626, 14495},
      {"cdn1", "s3fifo", 20691, 16827},
      {"cdn1", "s3fifo-d", 20691, 16827},
      {"cdn1", "clock", 20293, 16025},
      {"cdn1", "sieve", 20564, 16673},
      {"msr", "fifo", 9225, 2709},
      {"msr", "s3fifo", 8925, 4552},
      {"msr", "s3fifo-d", 8932, 4552},
      {"msr", "clock", 9667, 3256},
      {"msr", "sieve", 7342, 4433},
  };
  for (const GoldenCase& c : cases) {
    CheckGolden(c);
  }
}

}  // namespace
}  // namespace s3fifo
