#include <gtest/gtest.h>

#include <unordered_map>

#include "src/analysis/mrc.h"
#include "src/analysis/shards.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace BigZipf(uint64_t seed) {
  ZipfWorkloadConfig c;
  c.num_objects = 5000;
  c.num_requests = 100000;
  c.alpha = 1.0;
  c.seed = seed;
  return GenerateZipfTrace(c);
}

TEST(MrcTest, CurveHasOnePointPerSize) {
  Trace t = BigZipf(1);
  const auto curve = ComputeMrc(t, "lru", {50, 100, 200});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].cache_size, 50u);
  EXPECT_EQ(curve[2].cache_size, 200u);
}

TEST(MrcTest, LruCurveIsMonotone) {
  Trace t = BigZipf(2);
  const auto curve = ComputeMrc(t, "lru", {25, 50, 100, 200, 400, 800});
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].miss_ratio, curve[i - 1].miss_ratio + 1e-9);
  }
}

TEST(MrcTest, S3FifoCurveBelowFifoCurve) {
  Trace t = BigZipf(3);
  const std::vector<uint64_t> sizes = {50, 100, 200, 400};
  const auto fifo = ComputeMrc(t, "fifo", sizes);
  const auto s3 = ComputeMrc(t, "s3fifo", sizes);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LE(s3[i].miss_ratio, fifo[i].miss_ratio + 0.01) << sizes[i];
  }
}

TEST(ShardsTest, SampleKeepsAllRequestsOfSampledObjects) {
  Trace t = BigZipf(4);
  Trace sampled = ShardsSample(t, 0.1);
  ASSERT_GT(sampled.size(), 0u);
  // Per-object request counts must be preserved exactly.
  std::unordered_map<uint64_t, uint32_t> full_counts, sample_counts;
  for (const Request& r : t.requests()) {
    ++full_counts[r.id];
  }
  for (const Request& r : sampled.requests()) {
    ++sample_counts[r.id];
  }
  for (const auto& [id, n] : sample_counts) {
    ASSERT_EQ(n, full_counts[id]) << id;
  }
}

TEST(ShardsTest, SampleSizeNearRate) {
  Trace t = BigZipf(5);
  Trace sampled = ShardsSample(t, 0.1);
  const double object_rate = static_cast<double>(sampled.Stats().num_objects) /
                             static_cast<double>(t.Stats().num_objects);
  EXPECT_NEAR(object_rate, 0.1, 0.03);
}

TEST(ShardsTest, EstimateTracksExactMissRatio) {
  // §6.2.3: downsized simulation approximates the full simulation.
  Trace t = BigZipf(6);
  const auto exact = ComputeMrc(t, "lru", {500});
  const double approx = ShardsMissRatio(t, "lru", 500, 0.2);
  EXPECT_NEAR(approx, exact[0].miss_ratio, 0.05);
}

TEST(ShardsTest, FullRateIsExact) {
  Trace t = BigZipf(7);
  const auto exact = ComputeMrc(t, "fifo", {300});
  const double approx = ShardsMissRatio(t, "fifo", 300, 1.0);
  EXPECT_NEAR(approx, exact[0].miss_ratio, 1e-9);
}

TEST(ShardsTest, SampleIsDeterministicPerSeed) {
  Trace t = BigZipf(8);
  const Trace a = ShardsSample(t, 0.1, /*hash_seed=*/7);
  const Trace b = ShardsSample(t, 0.1, /*hash_seed=*/7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // Default seed is pinned: omitting it selects kShardsDefaultSeed.
  const Trace c = ShardsSample(t, 0.1);
  const Trace d = ShardsSample(t, 0.1, kShardsDefaultSeed);
  EXPECT_EQ(c.Fingerprint(), d.Fingerprint());
}

TEST(ShardsTest, DifferentSeedsSampleDifferentObjects) {
  Trace t = BigZipf(9);
  const Trace a = ShardsSample(t, 0.1, /*hash_seed=*/1);
  const Trace b = ShardsSample(t, 0.1, /*hash_seed=*/2);
  // Both are ~10% samples, but of different object subsets: the streams must
  // differ (equal fingerprints would mean the seed is dead plumbing).
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ShardsTest, MissRatioSeedPlumbing) {
  Trace t = BigZipf(10);
  CacheConfig config;
  config.capacity = 1;
  config.seed = 3;
  const double a = ShardsMissRatio(t, "lru", 400, 0.2, config);
  const double b = ShardsMissRatio(t, "lru", 400, 0.2, config);
  EXPECT_EQ(a, b);  // same seed, same estimate, bit-for-bit
  config.seed = 4;
  const double c = ShardsMissRatio(t, "lru", 400, 0.2, config);
  EXPECT_NE(a, c);  // different seed samples a different subset
  // All estimates stay near the exact value regardless of seed. The bound is
  // loose: a 20% object sample of a zipf(1.0) universe can miss hot heads,
  // and this test's job is the seed plumbing, not estimator accuracy.
  const auto exact = ComputeMrc(t, "lru", {400});
  EXPECT_NEAR(a, exact[0].miss_ratio, 0.15);
  EXPECT_NEAR(c, exact[0].miss_ratio, 0.15);
}

TEST(ShardsTest, StreamingMrcDeterministicAndSeedSensitive) {
  Trace t = BigZipf(11);
  const TraceView view = TraceView::Borrow(t);
  const std::vector<uint64_t> sizes = {100, 400, 1000};
  CacheConfig config;
  config.capacity = 1;
  config.seed = 5;
  const MrcCurve a = ShardsMrc(view, "lru", sizes, 0.2, config);
  const MrcCurve b = ShardsMrc(view, "lru", sizes, 0.2, config);
  ASSERT_EQ(a.miss_ratios.size(), sizes.size());
  EXPECT_EQ(a.miss_ratios, b.miss_ratios);
  EXPECT_FALSE(a.exact);
  config.seed = 6;
  const MrcCurve c = ShardsMrc(view, "lru", sizes, 0.2, config);
  EXPECT_NE(a.miss_ratios, c.miss_ratios);
}

}  // namespace
}  // namespace s3fifo
