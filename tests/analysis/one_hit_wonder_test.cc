#include "src/analysis/one_hit_wonder.h"

#include <gtest/gtest.h>

#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace FromIds(std::vector<uint64_t> ids) {
  std::vector<Request> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    Request r;
    r.id = ids[i];
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

TEST(OneHitWonderTest, PaperFigure1ToyExample) {
  // Fig. 1: 17 requests over 5 objects, E once -> 20% full-trace ratio;
  // requests 1..7 contain 4 objects of which C,D once -> 50%;
  // requests 1..4 contain 3 objects of which B,C once -> 67%.
  Trace t = FromIds({'A', 'B', 'A', 'C', 'B', 'A', 'D', 'A', 'B', 'C', 'B', 'A', 'E', 'C',
                     'A', 'B', 'D'});
  EXPECT_NEAR(OneHitWonderRatio(t, 0, 17), 0.20, 1e-9);
  EXPECT_NEAR(OneHitWonderRatio(t, 0, 7), 0.50, 1e-9);
  EXPECT_NEAR(OneHitWonderRatio(t, 0, 4), 2.0 / 3.0, 1e-9);
}

TEST(OneHitWonderTest, FullFractionMatchesTraceStats) {
  ZipfWorkloadConfig c;
  c.num_objects = 1000;
  c.num_requests = 20000;
  c.alpha = 1.0;
  c.seed = 3;
  Trace t = GenerateZipfTrace(c);
  EXPECT_DOUBLE_EQ(SubSequenceOneHitWonderRatio(t, 1.0), t.Stats().one_hit_wonder_ratio);
}

TEST(OneHitWonderTest, ShorterSequencesHaveHigherRatio) {
  // The paper's core observation (§3.1): the one-hit-wonder ratio rises as
  // the sequence shrinks.
  ZipfWorkloadConfig c;
  c.num_objects = 5000;
  c.num_requests = 100000;
  c.alpha = 1.0;
  c.seed = 5;
  Trace t = GenerateZipfTrace(c);
  const auto curve = OneHitWonderCurve(t, {1.0, 0.5, 0.1, 0.01}, 30, 7);
  EXPECT_LT(curve[0], curve[1]);
  EXPECT_LT(curve[1], curve[2]);
  EXPECT_LE(curve[2], curve[3] + 0.02);
}

TEST(OneHitWonderTest, MoreSkewMeansLowerRatioAtSameLength) {
  // Fig. 2: more skewed workloads exhibit lower one-hit-wonder ratios.
  auto ratio_at = [](double alpha) {
    ZipfWorkloadConfig c;
    c.num_objects = 5000;
    c.num_requests = 100000;
    c.alpha = alpha;
    c.seed = 11;
    Trace t = GenerateZipfTrace(c);
    return SubSequenceOneHitWonderRatio(t, 0.1, 30, 3);
  };
  EXPECT_GT(ratio_at(0.6), ratio_at(1.0));
  EXPECT_GT(ratio_at(1.0), ratio_at(1.4));
}

TEST(OneHitWonderTest, EmptyAndDegenerate) {
  Trace empty;
  EXPECT_DOUBLE_EQ(OneHitWonderRatio(empty, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SubSequenceOneHitWonderRatio(empty, 0.5), 0.0);
  Trace single = FromIds({1});
  EXPECT_DOUBLE_EQ(OneHitWonderRatio(single, 0, 1), 1.0);
}

TEST(OneHitWonderTest, DeterministicInSeed) {
  ZipfWorkloadConfig c;
  c.num_objects = 1000;
  c.num_requests = 20000;
  c.alpha = 0.8;
  c.seed = 9;
  Trace t = GenerateZipfTrace(c);
  EXPECT_DOUBLE_EQ(SubSequenceOneHitWonderRatio(t, 0.1, 10, 42),
                   SubSequenceOneHitWonderRatio(t, 0.1, 10, 42));
}

}  // namespace
}  // namespace s3fifo
