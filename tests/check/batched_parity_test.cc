// Batched-vs-scalar parity: GetBatch must replicate Get() request for
// request on every policy. Exercises the specialized BatchLoop overrides
// (fifo/lru/clock/sieve/s3fifo and the inherited s3fifo-d path), their
// batched eviction sweeps, and the default per-request fallback that every
// other policy takes — on fuzzed traces with deletes, scans, and resizes,
// in both count- and byte-based configurations, across batch sizes chosen
// to land chunk boundaries mid-eviction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/check/trace_fuzzer.h"
#include "src/core/cache.h"
#include "src/trace/request.h"

namespace s3fifo {
namespace check {
namespace {

struct ParityCase {
  const char* policy;
  const char* params;
};

// The policies with devirtualized AccessBatch overrides, their parameter
// variants (LRU-mode queues, the SIEVE main queue, the fingerprint ghost,
// multi-bit CLOCK), and representatives of the default scalar fallback.
const ParityCase kCases[] = {
    {"fifo", ""},
    {"lru", ""},
    {"clock", ""},
    {"clock", "bits=3"},
    {"sieve", ""},
    {"s3fifo", ""},
    {"s3fifo", "ghost_type=table"},
    {"s3fifo", "small_lru=1,main_lru=1"},
    {"s3fifo", "main_sieve=1"},
    {"s3fifo-d", ""},
    {"arc", ""},      // default AccessBatch (Get loop)
    {"tinylfu", ""},  // default AccessBatch (Get loop)
};

std::vector<Request> FuzzTrace(uint64_t seed, uint64_t capacity, bool count_based) {
  FuzzConfig fc;
  fc.seed = seed;
  fc.num_requests = 20000;
  fc.capacity = capacity;
  fc.count_based = count_based;
  return GenerateFuzzRequests(fc);
}

TEST(BatchedParityTest, CountBased) {
  const std::vector<Request> requests = FuzzTrace(0xba7c11, 64, true);
  for (const ParityCase& c : kCases) {
    CacheConfig config;
    config.capacity = 64;
    config.params = c.params;
    EXPECT_EQ(CheckBatchedParity(c.policy, config, requests), "")
        << c.policy << " params='" << c.params << "'";
  }
}

TEST(BatchedParityTest, ByteBased) {
  const std::vector<Request> requests = FuzzTrace(0xba7c22, 8192, false);
  for (const ParityCase& c : kCases) {
    CacheConfig config;
    config.capacity = 8192;
    config.count_based = false;
    config.params = c.params;
    EXPECT_EQ(CheckBatchedParity(c.policy, config, requests), "")
        << c.policy << " params='" << c.params << "'";
  }
}

// Odd and tiny batch sizes shift where chunk boundaries fall relative to
// evictions and deletes; parity must hold for any partition of the trace.
TEST(BatchedParityTest, BatchSizeInvariance) {
  const std::vector<Request> requests = FuzzTrace(0xba7c33, 32, true);
  CacheConfig config;
  config.capacity = 32;
  for (const uint32_t batch : {1u, 3u, 17u, 256u, 100000u}) {
    EXPECT_EQ(CheckBatchedParity("s3fifo", config, requests, batch), "") << "batch " << batch;
    EXPECT_EQ(CheckBatchedParity("sieve", config, requests, batch), "") << "batch " << batch;
    EXPECT_EQ(CheckBatchedParity("clock", config, requests, batch), "") << "batch " << batch;
  }
}

// A capacity small enough that the sieve hand wraps constantly and the
// CLOCK/S3-FIFO sweeps routinely cover the whole queue in one gather — the
// regime where a batched sweep bug (stale re-read, wrong splice order)
// would surface immediately.
TEST(BatchedParityTest, TinyCacheWrapStress) {
  const std::vector<Request> requests = FuzzTrace(0xba7c44, 4, true);
  for (const char* policy : {"fifo", "lru", "clock", "sieve", "s3fifo", "s3fifo-d"}) {
    CacheConfig config;
    config.capacity = 4;
    EXPECT_EQ(CheckBatchedParity(policy, config, requests, 64), "") << policy;
  }
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
