// Long-horizon differential fuzz: >= 1M requests per oracle-covered policy
// (the ISSUE 4 acceptance bar), split evenly between count- and byte-based
// configs. Runs under `ctest -L check` (not tier1); CI runs it under
// ASan/UBSan. S3FIFO_CHECK_REQUESTS overrides the per-policy request count
// for quick local iterations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/check/differential.h"
#include "src/check/trace_fuzzer.h"

namespace s3fifo {
namespace check {
namespace {

uint64_t RequestsPerPolicy() {
  if (const char* env = std::getenv("S3FIFO_CHECK_REQUESTS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1000000;
}

TEST(LongFuzzTest, MillionRequestsPerPolicy) {
  const uint64_t total = RequestsPerPolicy();
  const uint64_t per_run = total / 2;
  for (const std::string& policy : OracleCoveredPolicies()) {
    {
      FuzzConfig fc;
      fc.seed = 0x5eed0000 + 1;
      fc.num_requests = per_run;
      fc.capacity = 64;
      CacheConfig config;
      config.capacity = fc.capacity;
      const Divergence div = RunDifferential(GenerateFuzzRequests(fc), policy, config);
      EXPECT_FALSE(div.found) << policy << " (count-based, seed " << fc.seed
                              << "): " << div.what;
    }
    {
      FuzzConfig fc;
      fc.seed = 0x5eed0000 + 2;
      fc.num_requests = per_run;
      fc.capacity = 8192;
      fc.count_based = false;
      CacheConfig config;
      config.capacity = fc.capacity;
      config.count_based = false;
      const Divergence div = RunDifferential(GenerateFuzzRequests(fc), policy, config);
      EXPECT_FALSE(div.found) << policy << " (byte-based, seed " << fc.seed
                              << "): " << div.what;
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
