// Long-horizon differential fuzz: >= 1M requests per oracle-covered policy
// (the ISSUE 4 acceptance bar), split evenly between count- and byte-based
// configs. Runs under `ctest -L check` (not tier1); CI runs it under
// ASan/UBSan. S3FIFO_CHECK_REQUESTS overrides the per-policy request count
// for quick local iterations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/check/differential.h"
#include "src/check/flash_oracle.h"
#include "src/check/invariants.h"
#include "src/check/shrinker.h"
#include "src/check/trace_fuzzer.h"

namespace s3fifo {
namespace check {
namespace {

uint64_t RequestsPerPolicy() {
  if (const char* env = std::getenv("S3FIFO_CHECK_REQUESTS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1000000;
}

TEST(LongFuzzTest, MillionRequestsPerPolicy) {
  const uint64_t total = RequestsPerPolicy();
  const uint64_t per_run = total / 2;
  for (const std::string& policy : OracleCoveredPolicies()) {
    {
      FuzzConfig fc;
      fc.seed = 0x5eed0000 + 1;
      fc.num_requests = per_run;
      fc.capacity = 64;
      CacheConfig config;
      config.capacity = fc.capacity;
      const Divergence div = RunDifferential(GenerateFuzzRequests(fc), policy, config);
      EXPECT_FALSE(div.found) << policy << " (count-based, seed " << fc.seed
                              << "): " << div.what;
    }
    {
      FuzzConfig fc;
      fc.seed = 0x5eed0000 + 2;
      fc.num_requests = per_run;
      fc.capacity = 8192;
      fc.count_based = false;
      CacheConfig config;
      config.capacity = fc.capacity;
      config.count_based = false;
      const Divergence div = RunDifferential(GenerateFuzzRequests(fc), policy, config);
      EXPECT_FALSE(div.found) << policy << " (byte-based, seed " << fc.seed
                              << "): " << div.what;
    }
  }
}

// Batched GetBatch vs per-request Get on long fuzzed streams: the policies'
// devirtualized block loops and batched eviction sweeps must be bit-
// identical to the scalar path at every hit bit and occupancy checkpoint.
TEST(LongFuzzTest, BatchedParityFuzz) {
  const uint64_t total = RequestsPerPolicy();
  const uint64_t per_run = std::max<uint64_t>(total / 10, 10000);
  for (const std::string& policy : OracleCoveredPolicies()) {
    for (const bool count_based : {true, false}) {
      FuzzConfig fc;
      fc.seed = 0xba7c0000 + (count_based ? 1 : 2);
      fc.num_requests = per_run;
      fc.capacity = count_based ? 64 : 8192;
      fc.count_based = count_based;
      CacheConfig config;
      config.capacity = fc.capacity;
      config.count_based = count_based;
      const std::string violation =
          CheckBatchedParity(policy, config, GenerateFuzzRequests(fc));
      EXPECT_EQ(violation, "") << policy << (count_based ? " (count" : " (byte")
                               << "-based, seed " << fc.seed << ")";
    }
  }
}

// Long flash wall: >= 1M requests through LogStructuredFlashCache vs the
// naive flat oracle, split across the admission policies and the config axes
// that matter (discipline, ordering, set store, mid-run resizes). Conservation
// of device bytes is checked inside the driver after every request.
TEST(LongFuzzTest, MillionRequestsFlashDifferential) {
  const uint64_t total = RequestsPerPolicy();
  struct Leg {
    const char* admission;
    DramDiscipline discipline;
    LogOrdering ordering;
    uint64_t small_threshold;  // 0 = log only
    uint64_t resize_period;    // 0 = none
  };
  const Leg legs[] = {
      {"none", DramDiscipline::kLru, LogOrdering::kFifo, 0, 0},
      {"probabilistic", DramDiscipline::kLru, LogOrdering::kRipq, 0, 0},
      {"s3fifo", DramDiscipline::kSmallFifo, LogOrdering::kFifo, 128, 0},
      {"flashield", DramDiscipline::kSmallFifo, LogOrdering::kRipq, 128, 4096},
  };
  const uint64_t per_leg = std::max<uint64_t>(total / std::size(legs), 1000);
  for (const Leg& leg : legs) {
    LogFlashCacheConfig config;
    config.dram_capacity_bytes = 4096;
    config.dram_discipline = leg.discipline;
    config.log.segment_bytes = 4096;
    config.log.num_segments = 8;
    config.log.ordering = leg.ordering;
    config.small_object_threshold = leg.small_threshold;
    config.set_store.set_bytes = 512;
    config.set_store.num_sets = 16;

    FlashFuzzConfig fc;
    fc.seed = 0xf1a50000 + leg.resize_period + leg.small_threshold +
              static_cast<uint64_t>(leg.ordering);
    fc.num_requests = per_leg;
    fc.small_object_threshold = config.small_object_threshold;
    fc.segment_bytes = config.log.segment_bytes;

    FlashResizeSchedule resizes;
    resizes.period = leg.resize_period;
    resizes.seed = fc.seed ^ 0x5a5a;

    const Divergence div =
        RunFlashDifferential(GenerateFlashFuzzRequests(fc), config, leg.admission,
                             /*reuse_horizon=*/1000, /*admission_seed=*/17, resizes);
    EXPECT_FALSE(div.found) << leg.admission << " (seed " << fc.seed
                            << "): " << div.what;
  }
}

// Fuzz the one-pass MRC engine against brute force across seeds; on a
// divergence, ddmin-shrink the trace to a minimal reproducer and print it
// seed-first so the failure is replayable from the log alone.
TEST(LongFuzzTest, MrcEngineDifferentialFuzz) {
  const uint64_t total = RequestsPerPolicy();
  const uint64_t per_seed = std::max<uint64_t>(total / 20, 1000);
  const std::vector<uint64_t> grid = {8, 24, 64, 200};
  for (const std::string& policy : {"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"}) {
    for (uint64_t round = 0; round < 10; ++round) {
      FuzzConfig fc;
      fc.seed = 0x3fc0000 + round * 131 + policy.size();
      fc.num_requests = per_seed;
      fc.capacity = 64;
      CacheConfig config;
      config.capacity = 1;
      const std::vector<Request> requests = GenerateFuzzRequests(fc);
      const std::string violation = CheckMrcMatchesBruteForce(policy, config, requests, grid);
      if (violation.empty()) {
        const std::string mono = CheckMrcMonotone(policy, config, requests, grid);
        EXPECT_EQ(mono, "") << policy << " seed " << fc.seed;
        continue;
      }
      // Shrink before failing: the minimized stream is the actionable repro.
      const std::vector<Request> shrunk = ShrinkTrace(requests, [&](const std::vector<Request>& t) {
        return !CheckMrcMatchesBruteForce(policy, config, t, grid).empty();
      });
      std::fprintf(stderr, "MRC divergence for %s (seed %llu): %s\nshrunk to %zu requests:\n",
                   policy.c_str(), static_cast<unsigned long long>(fc.seed), violation.c_str(),
                   shrunk.size());
      for (const Request& r : shrunk) {
        std::fprintf(stderr, "  id=%llu op=%d size=%u\n",
                     static_cast<unsigned long long>(r.id), static_cast<int>(r.op), r.size);
      }
      FAIL() << policy << " one-pass MRC diverged (seed " << fc.seed << "): " << violation;
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
