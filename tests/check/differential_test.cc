// Differential fuzzing: every oracle-covered policy against its naive
// reference, count- and byte-based, across several seeds and parameter
// variants. On failure the divergence string carries the seed and the first
// mismatching request; reproduce with
//   check_replay --fuzz <policy> --seed <seed> [--bytes].
#include "src/check/differential.h"

#include <gtest/gtest.h>

#include "src/check/trace_fuzzer.h"
#include "src/core/cache_factory.h"

namespace s3fifo {
namespace check {
namespace {

std::vector<Request> FuzzTrace(uint64_t seed, uint64_t capacity, bool count_based,
                               uint64_t num_requests = 30000) {
  FuzzConfig fc;
  fc.seed = seed;
  fc.num_requests = num_requests;
  fc.capacity = capacity;
  fc.count_based = count_based;
  return GenerateFuzzRequests(fc);
}

TEST(DifferentialTest, CountBasedAllOracles) {
  for (const std::string& policy : OracleCoveredPolicies()) {
    for (uint64_t seed : {1, 2, 3}) {
      CacheConfig config;
      config.capacity = 64;
      const Divergence div =
          RunDifferential(FuzzTrace(seed, config.capacity, true), policy, config);
      EXPECT_FALSE(div.found) << policy << " seed " << seed << ": " << div.what;
    }
  }
}

TEST(DifferentialTest, ByteBasedAllOracles) {
  for (const std::string& policy : OracleCoveredPolicies()) {
    for (uint64_t seed : {7, 8}) {
      CacheConfig config;
      config.capacity = 4096;
      config.count_based = false;
      const Divergence div =
          RunDifferential(FuzzTrace(seed, config.capacity, false), policy, config);
      EXPECT_FALSE(div.found) << policy << " seed " << seed << ": " << div.what;
    }
  }
}

TEST(DifferentialTest, TinyCapacityStressesEvictionEdges) {
  // capacity 2-4: every request sits on an eviction boundary.
  for (const std::string& policy : OracleCoveredPolicies()) {
    for (uint64_t capacity : {2, 3, 4}) {
      CacheConfig config;
      config.capacity = capacity;
      FuzzConfig fc;
      fc.seed = 11 + capacity;
      fc.num_requests = 10000;
      fc.capacity = capacity;
      fc.key_space = 16;
      const Divergence div = RunDifferential(GenerateFuzzRequests(fc), policy, config);
      EXPECT_FALSE(div.found) << policy << " capacity " << capacity << ": " << div.what;
    }
  }
}

TEST(DifferentialTest, ParameterVariants) {
  struct Variant {
    const char* policy;
    const char* params;
  };
  const Variant variants[] = {
      {"s3fifo", "small_ratio=0.25,move_to_main_threshold=1"},
      {"s3fifo", "small_ratio=0.5,ghost_ratio=0.5,max_freq=1"},
      {"s3fifo-d", "adapt_min_hits=20,adapt_step_ratio=0.05"},
      {"clock", "bits=2"},
      {"2q", "kin_ratio=0.5,kout_ratio=1.0"},
  };
  for (const Variant& v : variants) {
    CacheConfig config;
    config.capacity = 64;
    config.params = v.params;
    const Divergence div = RunDifferential(FuzzTrace(21, 64, true, 20000), v.policy, config);
    EXPECT_FALSE(div.found) << v.policy << " [" << v.params << "]: " << div.what;
  }
}

TEST(DifferentialTest, ReportsInjectedDivergence) {
  // A FIFO cache compared against the LRU oracle must diverge on a trace
  // where a hit changes the victim — proves the comparator actually bites.
  CacheConfig config;
  config.capacity = 2;
  auto cache = CreateCache("fifo", config);
  auto oracle = CreateReferenceModel("lru", config);
  std::vector<Request> reqs;
  for (uint64_t id : {1, 2, 1, 3, 1}) {  // after {3}: fifo evicted 1, lru evicted 2
    Request r;
    r.id = id;
    reqs.push_back(r);
  }
  const Divergence div = RunDifferential(reqs, *cache, *oracle);
  ASSERT_TRUE(div.found);
  EXPECT_LE(div.index, 4u);
  EXPECT_FALSE(div.what.empty());
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
