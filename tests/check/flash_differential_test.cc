// Flash differential wall: LogStructuredFlashCache against the naive flat
// oracle, across DRAM disciplines, log orderings, admission policies, the
// small-object set store, and scheduled mid-run segment-budget resizes. On
// failure the divergence string carries the first mismatching request;
// reproduce with check_replay --fuzz-flash --seed <seed>.
#include "src/check/flash_oracle.h"

#include <gtest/gtest.h>

#include "src/check/replay_file.h"
#include "src/check/trace_fuzzer.h"

namespace s3fifo {
namespace check {
namespace {

constexpr const char* kAdmissions[] = {"none", "probabilistic", "flashield", "s3fifo"};

std::vector<Request> FlashTrace(uint64_t seed, const LogFlashCacheConfig& config,
                                uint64_t num_requests = 20000) {
  FlashFuzzConfig fc;
  fc.seed = seed;
  fc.num_requests = num_requests;
  fc.small_object_threshold = config.small_object_threshold;
  fc.segment_bytes = config.log.segment_bytes;
  return GenerateFlashFuzzRequests(fc);
}

LogFlashCacheConfig BaseConfig() {
  LogFlashCacheConfig config;
  config.dram_capacity_bytes = 4096;
  config.log.segment_bytes = 4096;
  config.log.num_segments = 8;
  return config;
}

TEST(FlashDifferentialTest, LogOnlyAllAdmissionsAndDisciplines) {
  for (const char* admission : kAdmissions) {
    for (DramDiscipline discipline : {DramDiscipline::kLru, DramDiscipline::kSmallFifo}) {
      for (LogOrdering ordering : {LogOrdering::kFifo, LogOrdering::kRipq}) {
        LogFlashCacheConfig config = BaseConfig();
        config.dram_discipline = discipline;
        config.log.ordering = ordering;
        const Divergence div =
            RunFlashDifferential(FlashTrace(3, config), config, admission,
                                 /*reuse_horizon=*/1000, /*admission_seed=*/17);
        EXPECT_FALSE(div.found)
            << admission << " discipline=" << static_cast<int>(discipline)
            << " ordering=" << static_cast<int>(ordering) << ": " << div.what;
      }
    }
  }
}

TEST(FlashDifferentialTest, SetStoreRouting) {
  for (const char* admission : kAdmissions) {
    LogFlashCacheConfig config = BaseConfig();
    config.dram_discipline = DramDiscipline::kSmallFifo;
    config.small_object_threshold = 128;
    config.set_store.set_bytes = 512;
    config.set_store.num_sets = 16;
    const Divergence div = RunFlashDifferential(FlashTrace(5, config), config, admission,
                                                /*reuse_horizon=*/500, /*admission_seed=*/23);
    EXPECT_FALSE(div.found) << admission << ": " << div.what;
  }
}

TEST(FlashDifferentialTest, RipqPromotionAndReadmission) {
  LogFlashCacheConfig config = BaseConfig();
  config.log.ordering = LogOrdering::kRipq;
  config.log.ripq_sections = 8;
  config.log.insert_priority = 2;
  config.log.num_segments = 4;  // GC fires constantly
  const Divergence div = RunFlashDifferential(FlashTrace(7, config, 30000), config, "none",
                                              /*reuse_horizon=*/100, /*admission_seed=*/1);
  EXPECT_FALSE(div.found) << div.what;
}

TEST(FlashDifferentialTest, TinyConfigsStressSealAndGcEdges) {
  // One-or-two-segment budgets with segment-sized objects: every insert sits
  // on a seal or GC boundary.
  for (uint64_t num_segments : {1, 2, 3}) {
    for (bool readmit : {true, false}) {
      LogFlashCacheConfig config;
      config.dram_capacity_bytes = 256;
      config.log.segment_bytes = 512;
      config.log.num_segments = num_segments;
      config.log.gc_readmit = readmit;
      FlashFuzzConfig fc;
      fc.seed = 40 + num_segments;
      fc.num_requests = 10000;
      fc.key_space = 64;
      fc.segment_bytes = config.log.segment_bytes;
      fc.p_near_segment = 0.2;
      fc.p_oversize = 0.05;
      const Divergence div =
          RunFlashDifferential(GenerateFlashFuzzRequests(fc), config, "s3fifo",
                               /*reuse_horizon=*/100, /*admission_seed=*/9);
      EXPECT_FALSE(div.found) << "segments=" << num_segments << " readmit=" << readmit
                              << ": " << div.what;
    }
  }
}

TEST(FlashDifferentialTest, ScheduledResizes) {
  LogFlashCacheConfig config = BaseConfig();
  config.small_object_threshold = 64;
  config.set_store.set_bytes = 256;
  config.set_store.num_sets = 8;
  FlashResizeSchedule resizes;
  resizes.period = 500;
  resizes.seed = 99;
  resizes.min_segments = 1;
  resizes.span = 12;
  const Divergence div = RunFlashDifferential(FlashTrace(11, config, 25000), config, "s3fifo",
                                              /*reuse_horizon=*/200, /*admission_seed=*/5,
                                              resizes);
  EXPECT_FALSE(div.found) << div.what;
}

TEST(FlashDifferentialTest, OracleDistinguishesOrderings) {
  // The comparator must bite: a FIFO-ordered cache walked against a RIPQ
  // oracle on a promotion-heavy trace has to diverge in victim choice.
  LogFlashCacheConfig fifo_config = BaseConfig();
  fifo_config.log.num_segments = 4;
  fifo_config.log.gc_readmit = false;
  LogFlashCacheConfig ripq_config = fifo_config;
  ripq_config.log.ordering = LogOrdering::kRipq;
  ripq_config.log.ripq_sections = 4;

  LogStructuredFlashCache cache(fifo_config, CreateAdmissionPolicy("none", 100, 1));
  NaiveFlashModel oracle(ripq_config, CreateAdmissionPolicy("none", 100, 1));
  bool diverged = false;
  for (const Request& req : FlashTrace(13, fifo_config, 30000)) {
    const bool cache_hit = cache.Get(req);
    const FlashStepOutcome oracle_out = oracle.Step(req);
    if (cache_hit != oracle_out.hit) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FlashDifferentialTest, ReplayFileRoundTrip) {
  ReplayCase rc;
  rc.mode = "flash";
  LogFlashCacheConfig config = BaseConfig();
  config.small_object_threshold = 64;
  config.log.ordering = LogOrdering::kRipq;
  rc.flash_config = FormatLogFlashConfig(config);
  rc.admission = "flashield";
  rc.reuse_horizon = 123;
  rc.admission_seed = 7;
  rc.resize_period = 100;
  rc.resize_seed = 5;
  rc.resize_min_segments = 2;
  rc.resize_span = 4;
  rc.fuzz_seed = 9;
  Request r;
  r.id = 42;
  r.size = 17;
  r.op = OpType::kSet;
  rc.requests.push_back(r);

  const ReplayCase parsed = ParseReplay(FormatReplay(rc));
  EXPECT_EQ(parsed.mode, "flash");
  EXPECT_EQ(parsed.flash_config, rc.flash_config);
  EXPECT_EQ(parsed.admission, "flashield");
  EXPECT_EQ(parsed.reuse_horizon, 123u);
  EXPECT_EQ(parsed.admission_seed, 7u);
  EXPECT_EQ(parsed.resize_period, 100u);
  EXPECT_EQ(parsed.resize_span, 4u);
  ASSERT_EQ(parsed.requests.size(), 1u);
  EXPECT_EQ(parsed.requests[0].id, 42u);
  EXPECT_EQ(parsed.requests[0].size, 17u);
  EXPECT_EQ(parsed.requests[0].op, OpType::kSet);

  // The parsed config round-trips through the cache constructor.
  const LogFlashCacheConfig reparsed = ParseLogFlashConfig(parsed.flash_config);
  EXPECT_EQ(reparsed.small_object_threshold, 64u);
  EXPECT_EQ(reparsed.log.ordering, LogOrdering::kRipq);
}

TEST(FlashDifferentialTest, ByteConservationHoldsUnderChurn) {
  LogFlashCacheConfig config = BaseConfig();
  config.log.num_segments = 2;
  LogStructuredFlashCache cache(config, CreateAdmissionPolicy("none", 100, 1));
  for (const Request& req : FlashTrace(17, config, 20000)) {
    cache.Get(req);
    const SegmentLogStats& s = cache.log_stats();
    ASSERT_EQ(s.device_bytes_written, s.admitted_bytes + s.gc_rewrite_bytes);
  }
  EXPECT_GT(cache.log_stats().gc_rewrite_bytes, 0u);  // GC actually re-admitted
  EXPECT_GT(cache.WriteAmplification(), 1.0);
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
