// Metamorphic invariants over every policy in the factory — including the
// ones without a naive oracle — plus the cross-implementation checks
// (Belady lower bound, deterministic replay, concurrent shards=1 parity).
#include "src/check/invariants.h"

#include <gtest/gtest.h>

#include "src/check/reference_model.h"
#include "src/check/trace_fuzzer.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace check {
namespace {

std::vector<Request> FuzzTrace(uint64_t seed, uint64_t capacity, bool count_based,
                               uint64_t num_requests, bool reads_only = false) {
  FuzzConfig fc;
  fc.seed = seed;
  fc.num_requests = num_requests;
  fc.capacity = capacity;
  fc.count_based = count_based;
  if (reads_only) {
    fc.p_set = 0.0;
    fc.p_delete = 0.0;
  }
  return GenerateFuzzRequests(fc);
}

TEST(InvariantsTest, EveryPolicyCountBased) {
  const auto trace = FuzzTrace(31, 64, true, 10000);
  for (const std::string& policy : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 64;
    const InvariantReport report = CheckRequestInvariants(policy, config, trace);
    EXPECT_TRUE(report.ok()) << policy << ": " << report.violations.front();
    EXPECT_EQ(report.hits + report.misses, report.requests) << policy;
    EXPECT_GT(report.hits, 0u) << policy;
  }
}

TEST(InvariantsTest, EveryPolicyByteBased) {
  const auto trace = FuzzTrace(32, 4096, false, 10000);
  for (const std::string& policy : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 4096;
    config.count_based = false;
    const InvariantReport report = CheckRequestInvariants(policy, config, trace);
    EXPECT_TRUE(report.ok()) << policy << ": " << report.violations.front();
  }
}

TEST(InvariantsTest, SimulateConservesHitAndMissCounts) {
  const auto requests = FuzzTrace(33, 64, true, 20000);
  Trace trace(requests, "conservation");
  uint64_t non_delete = 0;
  for (const Request& r : requests) {
    non_delete += r.op != OpType::kDelete ? 1 : 0;
  }
  for (const std::string& policy : OracleCoveredPolicies()) {
    CacheConfig config;
    config.capacity = 64;
    auto cache = CreateCache(policy, config);
    const SimResult result = Simulate(trace, *cache);
    EXPECT_EQ(result.hits + result.misses, result.requests) << policy;
    EXPECT_EQ(result.requests, non_delete) << policy;
  }
}

TEST(InvariantsTest, SimulatorObserverSeesEveryRequest) {
  const auto requests = FuzzTrace(34, 64, true, 5000);
  Trace trace(requests, "observer");
  CacheConfig config;
  config.capacity = 64;
  auto cache = CreateCache("s3fifo", config);
  uint64_t seen = 0;
  uint64_t observed_hits = 0;
  SimOptions options;
  options.observer = [&](uint64_t index, const Request& req, bool hit) {
    EXPECT_EQ(index, seen);
    EXPECT_EQ(req.id, requests[index].id);
    ++seen;
    if (hit && req.op != OpType::kDelete) {
      ++observed_hits;
    }
  };
  const SimResult result = Simulate(trace, *cache, options);
  EXPECT_EQ(seen, requests.size());
  EXPECT_EQ(observed_hits, result.hits);
}

TEST(InvariantsTest, DeterministicReplayAllPolicies) {
  const auto trace = FuzzTrace(35, 64, true, 10000);
  for (const std::string& policy : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 64;
    EXPECT_EQ(CheckDeterministicReplay(policy, config, trace), "") << policy;
  }
}

TEST(InvariantsTest, BeladyIsALowerBoundOnMisses) {
  const auto trace = FuzzTrace(36, 64, true, 20000, /*reads_only=*/true);
  for (const std::string& policy : OracleCoveredPolicies()) {
    CacheConfig config;
    config.capacity = 64;
    EXPECT_EQ(CheckBeladyLowerBound(policy, config, trace), "") << policy;
  }
}

TEST(InvariantsTest, GhostQueueBoundedUnderGhostHeavyChurn) {
  // A scan-heavy stream maximizes quick demotions, pushing the ghost queue
  // toward (and never past) its configured entry bound.
  FuzzConfig fc;
  fc.seed = 37;
  fc.num_requests = 30000;
  fc.capacity = 32;
  fc.key_space = 4096;  // mostly cold: nearly every object dies young
  fc.p_scan = 0.05;
  CacheConfig config;
  config.capacity = 32;
  config.params = "ghost_ratio=0.5";
  const InvariantReport report =
      CheckRequestInvariants("s3fifo", config, GenerateFuzzRequests(fc));
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

// --- One-pass MRC engine invariants -------------------------------------

const std::vector<std::string>& MrcPolicies() {
  static const std::vector<std::string>* p =
      new std::vector<std::string>{"fifo", "clock", "sieve", "s3fifo", "s3fifo-d"};
  return *p;
}

std::vector<uint64_t> MrcGrid() { return {16, 48, 128, 320}; }

TEST(InvariantsTest, MrcMatchesBruteForceOnFuzzedTraces) {
  const auto trace = FuzzTrace(41, 128, true, 15000);
  CacheConfig config;
  config.capacity = 1;
  for (const std::string& policy : MrcPolicies()) {
    EXPECT_EQ(CheckMrcMatchesBruteForce(policy, config, trace, MrcGrid()), "") << policy;
  }
}

TEST(InvariantsTest, MrcMonotoneWithinBeladySlack) {
  const auto trace = FuzzTrace(42, 128, true, 15000);
  CacheConfig config;
  config.capacity = 1;
  for (const std::string& policy : MrcPolicies()) {
    EXPECT_EQ(CheckMrcMonotone(policy, config, trace, MrcGrid()), "") << policy;
  }
}

TEST(InvariantsTest, MrcGridRefinementInvariant) {
  const auto trace = FuzzTrace(43, 128, true, 15000);
  CacheConfig config;
  config.capacity = 1;
  for (const std::string& policy : MrcPolicies()) {
    EXPECT_EQ(CheckMrcGridRefinement(policy, config, trace, MrcGrid()), "") << policy;
  }
}

TEST(InvariantsTest, ShardsConvergesToExactCurve) {
  // A wider key universe than the default fuzz config: spatial sampling
  // needs enough distinct objects that a rate-R sample is representative.
  FuzzConfig fc;
  fc.seed = 44;
  fc.num_requests = 40000;
  fc.capacity = 512;
  fc.key_space = 4096;
  fc.p_set = 0.0;
  fc.p_delete = 0.0;
  const auto trace = GenerateFuzzRequests(fc);
  const std::vector<uint64_t> grid = {128, 512, 1024};
  CacheConfig config;
  config.capacity = 1;
  // rate == 1.0 must be EXACT (hard equality inside the check); lower rates
  // only need to land near the curve, with tolerance widening as the sample
  // shrinks (the FAST'15 error model scales like 1/sqrt(sampled objects)).
  for (const std::string& policy : {"s3fifo", "fifo", "lru"}) {
    EXPECT_EQ(CheckShardsConvergence(policy, config, trace, grid, 1.0, 0.0), "") << policy;
    EXPECT_EQ(CheckShardsConvergence(policy, config, trace, grid, 0.5, 0.08), "") << policy;
    EXPECT_EQ(CheckShardsConvergence(policy, config, trace, grid, 0.25, 0.15), "") << policy;
  }
}

TEST(InvariantsTest, ConcurrentShardsOneMatchesSerialSimulator) {
  // The concurrent prototype at cache_shards=1, driven single-threaded, must
  // reproduce the serial simulator's miss ratio (it shares the algorithm but
  // none of the code).
  constexpr uint64_t kCapacity = 2000;
  constexpr uint64_t kRequests = 100000;
  ConcurrentCacheConfig cc;
  cc.capacity_objects = kCapacity;
  cc.value_size = 16;
  cc.cache_shards = 1;
  ConcurrentS3Fifo concurrent(cc);

  CacheConfig sc;
  sc.capacity = kCapacity;
  sc.params = "ghost_type=table";  // the prototype uses the fingerprint table
  auto serial = CreateCache("s3fifo", sc);

  ZipfDistribution zipf(20000, 1.0);
  Rng rng(38);
  uint64_t concurrent_hits = 0;
  uint64_t serial_hits = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    const uint64_t id = zipf.Sample(rng);
    concurrent_hits += concurrent.Get(id) ? 1 : 0;
    Request r;
    r.id = id;
    serial_hits += serial->Get(r) ? 1 : 0;
  }
  const double concurrent_ratio = static_cast<double>(concurrent_hits) / kRequests;
  const double serial_ratio = static_cast<double>(serial_hits) / kRequests;
  EXPECT_NEAR(concurrent_ratio, serial_ratio, 0.01);
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
