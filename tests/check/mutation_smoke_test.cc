// Mutation smoke test: prove the harness actually detects bugs.
//
// The mutant is the classic S3-FIFO off-by-one — promoting S tails at
// freq >= 3 instead of freq >= 2 (Algorithm 1 line 18 misread). Rather than
// linking a second copy of the policy, the mutant is the real S3FifoCache
// constructed with move_to_main_threshold=3 while the oracle keeps the
// correct threshold 2: behaviourally identical to mutating the comparison,
// with zero code duplication.
//
// Acceptance (ISSUE 4): the fuzzer catches the mutant within 10k requests
// and the shrinker reduces the failure to <= 50 requests.
#include <gtest/gtest.h>

#include "src/check/differential.h"
#include "src/check/shrinker.h"
#include "src/check/trace_fuzzer.h"
#include "src/policies/s3fifo.h"

namespace s3fifo {
namespace check {
namespace {

CacheConfig MutantConfig() {
  CacheConfig config;
  config.capacity = 16;
  config.params = "move_to_main_threshold=3";  // the off-by-one under test
  return config;
}

CacheConfig HealthyConfig() {
  CacheConfig config;
  config.capacity = 16;
  return config;  // oracle default: threshold 2
}

Divergence RunMutant(const std::vector<Request>& requests) {
  S3FifoCache mutant(MutantConfig());
  auto oracle = CreateReferenceModel("s3fifo", HealthyConfig());
  return RunDifferential(requests, mutant, *oracle);
}

TEST(MutationSmokeTest, FuzzerCatchesPromotionOffByOneWithin10kRequests) {
  FuzzConfig fc;
  fc.seed = 101;
  fc.num_requests = 10000;
  fc.capacity = 16;
  fc.key_space = 64;  // small cache, small key space: divergences shrink tight
  const std::vector<Request> requests = GenerateFuzzRequests(fc);
  const Divergence div = RunMutant(requests);
  ASSERT_TRUE(div.found) << "mutant survived 10k fuzzed requests";
  EXPECT_LT(div.index, 10000u);

  // Shrink the failing prefix to a minimal reproducer.
  std::vector<Request> prefix(requests.begin(), requests.begin() + div.index + 1);
  ShrinkStats stats;
  const std::vector<Request> shrunk = ShrinkTrace(
      prefix, [](const std::vector<Request>& candidate) { return RunMutant(candidate).found; },
      20000, &stats);
  EXPECT_LE(shrunk.size(), 50u) << "shrunk reproducer too large (" << stats.probes
                                << " probes from " << stats.initial_size << " requests)";
  EXPECT_TRUE(RunMutant(shrunk).found);
  // The healthy cache must pass the exact same reproducer.
  const Divergence healthy = RunDifferential(shrunk, "s3fifo", HealthyConfig());
  EXPECT_FALSE(healthy.found) << healthy.what;
}

TEST(MutationSmokeTest, GhostSizeMutantCaughtByCapacityVariant) {
  // A second mutant class: a mis-sized ghost queue (ghost_ratio 0.45 vs the
  // oracle's 0.9) changes which misses are ghost hits. The differential
  // must notice; this guards the ghost-queue comparison path specifically.
  FuzzConfig fc;
  fc.seed = 102;
  fc.num_requests = 10000;
  fc.capacity = 64;
  const std::vector<Request> requests = GenerateFuzzRequests(fc);

  CacheConfig mutant_config;
  mutant_config.capacity = 64;
  mutant_config.params = "ghost_ratio=0.45";
  S3FifoCache mutant(mutant_config);
  CacheConfig oracle_config;
  oracle_config.capacity = 64;  // same capacity; only the ghost ratio differs
  auto oracle = CreateReferenceModel("s3fifo", oracle_config);
  const Divergence div = RunDifferential(requests, mutant, *oracle);
  ASSERT_TRUE(div.found) << "ghost-size mutant survived 10k fuzzed requests";
  EXPECT_LT(div.index, 10000u);
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
