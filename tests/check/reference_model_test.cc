// Direct unit tests of the naive oracles on hand-built sequences, so the
// harness's ground truth is itself pinned before it judges the optimized
// policies.
#include "src/check/reference_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace s3fifo {
namespace check {
namespace {

Request Get(uint64_t id, uint32_t size = 1) {
  Request r;
  r.id = id;
  r.size = size;
  return r;
}

Request Del(uint64_t id) {
  Request r;
  r.id = id;
  r.op = OpType::kDelete;
  return r;
}

CacheConfig Cfg(uint64_t capacity, bool count_based = true, std::string params = "") {
  CacheConfig c;
  c.capacity = capacity;
  c.count_based = count_based;
  c.params = std::move(params);
  return c;
}

TEST(NaiveGhostTest, RefreshAndOverflow) {
  NaiveGhost g(2);
  g.Insert(1);
  g.Insert(2);
  g.Insert(1);  // refresh: 1 is now the newest
  g.Insert(3);  // overflow drops the oldest live entry (2)
  EXPECT_TRUE(g.Contains(1));
  EXPECT_FALSE(g.Contains(2));
  EXPECT_TRUE(g.Contains(3));
  EXPECT_EQ(g.size(), 2u);
  g.Remove(1);
  EXPECT_FALSE(g.Contains(1));
  EXPECT_EQ(g.size(), 1u);
}

TEST(FifoOracleTest, EvictsInInsertionOrderRegardlessOfHits) {
  auto m = CreateReferenceModel("fifo", Cfg(2));
  EXPECT_FALSE(m->Step(Get(1)).hit);
  EXPECT_FALSE(m->Step(Get(2)).hit);
  EXPECT_TRUE(m->Step(Get(1)).hit);  // hit does not refresh FIFO order
  const StepOutcome out = m->Step(Get(3));
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({1}));
  EXPECT_EQ(out.occupied, 2u);
}

TEST(LruOracleTest, HitRefreshesRecency) {
  auto m = CreateReferenceModel("lru", Cfg(2));
  m->Step(Get(1));
  m->Step(Get(2));
  EXPECT_TRUE(m->Step(Get(1)).hit);  // 2 is now the LRU victim
  const StepOutcome out = m->Step(Get(3));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));
  EXPECT_TRUE(m->Contains(1));
}

TEST(ClockOracleTest, ReferencedEntryGetsSecondChance) {
  auto m = CreateReferenceModel("clock", Cfg(3));
  m->Step(Get(1));
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(1));  // ref bit set on 1
  const StepOutcome out = m->Step(Get(4));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));  // 1 spared, hand passes on
  EXPECT_TRUE(m->Contains(1));
}

TEST(SieveOracleTest, VisitedSurvivesAndHandMakesProgress) {
  auto m = CreateReferenceModel("sieve", Cfg(3));
  m->Step(Get(1));
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(2));  // visited
  StepOutcome out = m->Step(Get(4));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({1}));
  EXPECT_TRUE(m->Contains(2));
  // All visited: the sweep must still evict exactly one object.
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(4));
  out = m->Step(Get(5));
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.evicted.size(), 1u);
  EXPECT_EQ(out.occupied, 3u);
}

TEST(LfuOracleTest, EvictsLeastFrequentWithLruTieBreak) {
  auto m = CreateReferenceModel("lfu", Cfg(3));
  m->Step(Get(1));
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(1));
  m->Step(Get(3));  // 2 is the only once-seen object
  StepOutcome out = m->Step(Get(4));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));
  // 4 (hits 0) loses against 1 and 3 (hits 1): the newest zero-hit object
  // goes first on the next miss.
  out = m->Step(Get(5));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({4}));
}

TEST(TwoQOracleTest, OnlyGhostHitsPromoteToAm) {
  // capacity 4 -> kin_capacity 1.
  auto m = CreateReferenceModel("2q", Cfg(4));
  m->Step(Get(1));
  EXPECT_TRUE(m->Step(Get(1)).hit);  // A1in hit: no promotion
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(4));
  // Capacity pressure reclaims from the oversized A1in: 1 leaves to A1out
  // despite its hit (the correlated-reference window).
  StepOutcome out = m->Step(Get(5));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({1}));
  out = m->Step(Get(1));  // ghost hit -> straight into Am
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));
  EXPECT_TRUE(m->Contains(1));
}

TEST(S3FifoOracleTest, OneHitWonderDemotedAndGhostHitGoesToMain) {
  auto m = CreateReferenceModel("s3fifo", Cfg(2, true, "small_ratio=0.5"));
  m->Step(Get(1));
  m->Step(Get(2));
  // 1 was never re-accessed: quick demotion to the ghost on the next miss.
  StepOutcome out = m->Step(Get(3));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({1}));
  // Ghost hit: 1 re-enters through the main queue (evicting 2 from S).
  out = m->Step(Get(1));
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));
  EXPECT_TRUE(m->Contains(1));
}

TEST(S3FifoOracleTest, FrequentSmallObjectPromotesToMain) {
  auto m = CreateReferenceModel("s3fifo", Cfg(4, true, "small_ratio=0.5"));
  m->Step(Get(1));
  m->Step(Get(1));
  m->Step(Get(1));  // freq 2 >= threshold 2
  m->Step(Get(2));
  m->Step(Get(3));
  m->Step(Get(4));  // cache now full, all in S
  // Next miss drains S: 1 promotes to M (not evicted), 2 dies to the ghost.
  const StepOutcome out = m->Step(Get(5));
  EXPECT_EQ(out.evicted, std::vector<uint64_t>({2}));
  EXPECT_TRUE(m->Contains(1));
  EXPECT_TRUE(m->Contains(5));
}

TEST(OracleTest, OversizedObjectBypassesWithoutEviction) {
  for (const std::string& policy : OracleCoveredPolicies()) {
    auto m = CreateReferenceModel(policy, Cfg(100, /*count_based=*/false));
    m->Step(Get(1, 60));
    const StepOutcome out = m->Step(Get(2, 101));  // larger than the cache
    EXPECT_FALSE(out.hit) << policy;
    EXPECT_TRUE(out.evicted.empty()) << policy;
    EXPECT_EQ(out.occupied, 60u) << policy;
    EXPECT_FALSE(m->Contains(2)) << policy;
  }
}

TEST(OracleTest, DeleteRemovesAndReportsResident) {
  for (const std::string& policy : OracleCoveredPolicies()) {
    auto m = CreateReferenceModel(policy, Cfg(8));
    m->Step(Get(1));
    m->Step(Get(2));
    StepOutcome out = m->Step(Del(1));
    EXPECT_FALSE(out.hit) << policy;
    EXPECT_EQ(out.evicted, std::vector<uint64_t>({1})) << policy;
    EXPECT_FALSE(m->Contains(1)) << policy;
    out = m->Step(Del(1));  // double delete is a no-op
    EXPECT_TRUE(out.evicted.empty()) << policy;
  }
}

TEST(OracleFactoryTest, RejectsUncoveredPoliciesAndConfigs) {
  EXPECT_THROW(CreateReferenceModel("arc", Cfg(8)), std::invalid_argument);
  EXPECT_THROW(CreateReferenceModel("s3fifo", Cfg(8, true, "small_lru=1")),
               std::invalid_argument);
  EXPECT_THROW(CreateReferenceModel("s3fifo", Cfg(8, true, "ghost_type=table")),
               std::invalid_argument);
  EXPECT_THROW(CreateReferenceModel("s3fifo", Cfg(0)), std::invalid_argument);
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
