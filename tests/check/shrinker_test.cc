// Shrinker + replay-file unit tests: minimization against synthetic
// predicates, probe budgets, and the reproducer round trip.
#include "src/check/shrinker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/check/replay_file.h"
#include "src/check/trace_fuzzer.h"

namespace s3fifo {
namespace check {
namespace {

std::vector<Request> NumberedRequests(uint64_t n) {
  std::vector<Request> reqs(n);
  for (uint64_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].size = 100 + i;
    reqs[i].op = i % 3 == 0 ? OpType::kSet : OpType::kGet;
  }
  return reqs;
}

bool HasId(const std::vector<Request>& reqs, uint64_t id) {
  return std::any_of(reqs.begin(), reqs.end(),
                     [id](const Request& r) { return r.id == id; });
}

TEST(ShrinkerTest, ReducesToTheTwoEssentialRequests) {
  const auto failing = NumberedRequests(1000);
  auto still_fails = [](const std::vector<Request>& reqs) {
    // "Fails" iff id 137 appears before id 842.
    size_t a = reqs.size(), b = reqs.size();
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].id == 137 && a == reqs.size()) a = i;
      if (reqs[i].id == 842 && b == reqs.size()) b = i;
    }
    return a < b && b < reqs.size();
  };
  ASSERT_TRUE(still_fails(failing));
  ShrinkStats stats;
  const auto shrunk = ShrinkTrace(failing, still_fails, 20000, &stats);
  EXPECT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk[0].id, 137u);
  EXPECT_EQ(shrunk[1].id, 842u);
  EXPECT_EQ(stats.initial_size, 1000u);
  EXPECT_EQ(stats.final_size, 2u);
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(ShrinkerTest, SimplifiesOpsAndSizes) {
  auto failing = NumberedRequests(50);
  auto still_fails = [](const std::vector<Request>& reqs) { return HasId(reqs, 6); };
  const auto shrunk = ShrinkTrace(failing, still_fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0].id, 6u);
  EXPECT_EQ(shrunk[0].op, OpType::kGet);  // kSet simplified away
  EXPECT_EQ(shrunk[0].size, 1u);
}

TEST(ShrinkerTest, RespectsProbeBudget) {
  const auto failing = NumberedRequests(4000);
  uint64_t calls = 0;
  auto still_fails = [&calls](const std::vector<Request>& reqs) {
    ++calls;
    return HasId(reqs, 0) && HasId(reqs, 3999);
  };
  ShrinkStats stats;
  const auto shrunk = ShrinkTrace(failing, still_fails, /*max_probes=*/100, &stats);
  EXPECT_LE(stats.probes, 100u);
  // Budget-capped output must still reproduce the failure.
  EXPECT_TRUE(HasId(shrunk, 0));
  EXPECT_TRUE(HasId(shrunk, 3999));
}

TEST(ReplayFileTest, RoundTripsThroughTextAndDisk) {
  ReplayCase replay;
  replay.policy = "s3fifo";
  replay.config.capacity = 128;
  replay.config.count_based = false;
  replay.config.params = "small_ratio=0.25,ghost_ratio=0.5";
  replay.config.seed = 9;
  replay.fuzz_seed = 1234;
  FuzzConfig fc;
  fc.seed = 1234;
  fc.num_requests = 40;
  replay.requests = GenerateFuzzRequests(fc);

  const ReplayCase parsed = ParseReplay(FormatReplay(replay));
  EXPECT_EQ(parsed.policy, replay.policy);
  EXPECT_EQ(parsed.config.capacity, replay.config.capacity);
  EXPECT_EQ(parsed.config.count_based, replay.config.count_based);
  EXPECT_EQ(parsed.config.params, replay.config.params);
  EXPECT_EQ(parsed.config.seed, replay.config.seed);
  EXPECT_EQ(parsed.fuzz_seed, replay.fuzz_seed);
  ASSERT_EQ(parsed.requests.size(), replay.requests.size());
  for (size_t i = 0; i < parsed.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].id, replay.requests[i].id);
    EXPECT_EQ(parsed.requests[i].size, replay.requests[i].size);
    EXPECT_EQ(parsed.requests[i].op, replay.requests[i].op);
  }

  const std::string path = testing::TempDir() + "/s3fifo_replay_roundtrip.repro";
  WriteReplayFile(replay, path);
  const ReplayCase from_disk = ReadReplayFile(path);
  EXPECT_EQ(from_disk.requests.size(), replay.requests.size());
  EXPECT_EQ(from_disk.config.params, replay.config.params);
}

TEST(ReplayFileTest, RejectsMalformedInput) {
  EXPECT_THROW(ParseReplay("capacity 10\n"), std::invalid_argument);  // no policy
  EXPECT_THROW(ParseReplay("policy lru\ncapacity 4\nreq fly 1 1\n"),
               std::invalid_argument);  // bad op
  EXPECT_THROW(ParseReplay("policy lru\ncapacity 4\nbogus 1\n"), std::invalid_argument);
  // Comments and blank lines are fine.
  const ReplayCase ok = ParseReplay("# hi\n\npolicy lru\ncapacity 4\nreq get 1 1\n");
  EXPECT_EQ(ok.policy, "lru");
  ASSERT_EQ(ok.requests.size(), 1u);
}

}  // namespace
}  // namespace check
}  // namespace s3fifo
