// GetBatch/Set/Delete contract tests for the concurrent caches:
//  * GetBatch outcomes are BIT-IDENTICAL to per-request Get on the same
//    stream (prefetch pipelining and per-batch guard pinning may not change
//    a single decision), across batch sizes and shard counts;
//  * the ValueSink receives exactly the hits, in batch order, with the
//    resident bytes;
//  * Set stores caller bytes (readable through the sink), replaces in place
//    without growing the cache, and admits when absent;
//  * Delete removes residency exactly once and composes with eviction.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace {

std::vector<uint64_t> ZipfStream(uint64_t objects, uint64_t count, uint64_t seed) {
  ZipfDistribution zipf(objects, 1.0);
  Rng rng(seed);
  std::vector<uint64_t> ids;
  ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ids.push_back(zipf.Sample(rng));
  }
  return ids;
}

TEST(GetBatchParityTest, MatchesScalarGetBitExactly) {
  const std::vector<uint64_t> ids = ZipfStream(20000, 100000, 11);
  for (const unsigned shards : {1u, 4u}) {
    for (const uint32_t batch : {1u, 7u, 64u, 1024u}) {
      ConcurrentCacheConfig config;
      config.capacity_objects = 2000;
      config.value_size = 16;
      config.cache_shards = shards;
      ConcurrentS3Fifo scalar(config);
      ConcurrentS3Fifo batched(config);

      std::vector<uint8_t> hits(batch);
      for (size_t i = 0; i < ids.size();) {
        const uint32_t n =
            static_cast<uint32_t>(std::min<size_t>(batch, ids.size() - i));
        batched.GetBatch(ids.data() + i, n, hits.data());
        for (uint32_t k = 0; k < n; ++k) {
          const bool scalar_hit = scalar.Get(ids[i + k]);
          ASSERT_EQ(hits[k] != 0, scalar_hit)
              << "divergence at request " << i + k << " (shards=" << shards
              << " batch=" << batch << ")";
        }
        i += n;
      }
      EXPECT_EQ(scalar.ApproxSize(), batched.ApproxSize());
      EXPECT_EQ(scalar.Stats().hits, batched.Stats().hits);
    }
  }
}

struct RecordingSink final : public ValueSink {
  std::map<uint32_t, std::string> values;  // batch index -> bytes
  void OnValue(uint32_t index, const char* data, uint32_t size) override {
    values[index] = std::string(data, size);
  }
};

TEST(GetBatchSinkTest, DeliversExactlyTheHitsInOrder) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 100;
  config.value_size = 4;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);

  // Admit 1..4 (misses), then batch-get them plus an absent id.
  for (uint64_t id = 1; id <= 4; ++id) {
    cache.Get(id);
  }
  const uint64_t ids[5] = {1, 999, 2, 3, 4};
  uint8_t hits[5] = {};
  RecordingSink sink;
  cache.GetBatch(ids, 5, hits, &sink);

  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 0);  // miss: admitted, no sink callback
  EXPECT_EQ(hits[2], 1);
  ASSERT_EQ(sink.values.size(), 4u);
  EXPECT_EQ(sink.values.count(1), 0u);
  // Fill payloads are value_size bytes of the id's low byte.
  EXPECT_EQ(sink.values[0], std::string(4, static_cast<char>(1)));
  EXPECT_EQ(sink.values[4], std::string(4, static_cast<char>(4)));
}

TEST(SetTest, StoresReplacesAndAdmits) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 100;
  config.value_size = 4;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);

  // Set of an absent id admits it.
  ASSERT_TRUE(cache.Set(7, "alpha", 5));
  const uint64_t size_after = cache.ApproxSize();
  EXPECT_EQ(size_after, 1u);

  auto read_value = [&](uint64_t id) {
    const uint64_t ids[1] = {id};
    uint8_t hit = 0;
    RecordingSink sink;
    cache.GetBatch(ids, 1, &hit, &sink);
    return hit != 0 ? sink.values[0] : std::string("<miss>");
  };
  EXPECT_EQ(read_value(7), "alpha");

  // Replacing in place: same residency, new bytes (longer and shorter).
  ASSERT_TRUE(cache.Set(7, "beta-longer-value", 17));
  EXPECT_EQ(cache.ApproxSize(), size_after);
  EXPECT_EQ(read_value(7), "beta-longer-value");
  ASSERT_TRUE(cache.Set(7, "z", 1));
  EXPECT_EQ(read_value(7), "z");
}

TEST(SetTest, HitMissAccountingMirrorsSimulatorKSet) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 100;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);

  cache.Set(1, "a", 1);  // absent -> admitted: a miss
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().hits, 0u);
  cache.Set(1, "b", 1);  // resident -> in-place replace: a hit
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(DeleteTest, RemovesExactlyOnce) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 100;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);

  EXPECT_FALSE(cache.Delete(5));  // absent
  cache.Get(5);                   // admit
  EXPECT_EQ(cache.ApproxSize(), 1u);
  EXPECT_TRUE(cache.Delete(5));
  EXPECT_FALSE(cache.Delete(5));
  EXPECT_EQ(cache.ApproxSize(), 0u);
  EXPECT_FALSE(cache.Get(5));  // miss again (re-admits)
  EXPECT_EQ(cache.ApproxSize(), 1u);
}

TEST(DeleteTest, ComposesWithEvictionUnderChurn) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 200;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);

  // Interleave admissions (forcing evictions) with deletes; residency must
  // never exceed capacity and every delete outcome must match a model of
  // residency derived from Get results.
  Rng rng(3);
  std::map<uint64_t, bool> last_get_hit;
  for (uint64_t i = 0; i < 20000; ++i) {
    const uint64_t id = rng.NextBounded(500);
    if (rng.NextDouble() < 0.2) {
      cache.Delete(id);
      // After a delete the next Get on id must be a miss.
      EXPECT_FALSE(cache.Get(id)) << "id " << id << " hit right after delete";
    } else {
      cache.Get(id);
    }
    ASSERT_LE(cache.ApproxSize(), config.capacity_objects);
  }
}

TEST(DeleteTest, DeleteDuringPendingInsertionDiscards) {
  // A delete that races the eviction gate's pending queue: admit more than
  // the gate drains instantly, delete one of the just-admitted ids, and
  // verify it is gone (dead-entry discard path) without corrupting counts.
  ConcurrentCacheConfig config;
  config.capacity_objects = 1000;
  config.cache_shards = 1;
  ConcurrentS3Fifo cache(config);
  for (uint64_t id = 0; id < 100; ++id) {
    cache.Get(id);
    ASSERT_TRUE(cache.Delete(id));
    EXPECT_FALSE(cache.Get(id));  // re-admitted as a fresh miss
    ASSERT_TRUE(cache.Delete(id));
  }
  EXPECT_EQ(cache.ApproxSize(), 0u);
}

}  // namespace
}  // namespace s3fifo
