// Correctness of the four concurrent caches: single-thread semantics plus
// multi-thread stress (bounded occupancy, no crashes, sane hit counting).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/concurrent_s3fifo_ring.h"
#include "src/concurrent/concurrent_tinylfu.h"
#include "src/core/cache_factory.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace {

std::unique_ptr<ConcurrentCache> MakeCache(const std::string& kind,
                                           const ConcurrentCacheConfig& config) {
  if (kind == "lru-strict") {
    return std::make_unique<ConcurrentLruStrict>(config);
  }
  if (kind == "lru-optimized") {
    return std::make_unique<ConcurrentLruOptimized>(config);
  }
  if (kind == "clock") {
    return std::make_unique<ConcurrentClock>(config);
  }
  if (kind == "tinylfu") {
    return std::make_unique<ConcurrentTinyLfu>(config);
  }
  if (kind == "s3fifo-ring") {
    return std::make_unique<ConcurrentS3FifoRing>(config);
  }
  return std::make_unique<ConcurrentS3Fifo>(config);
}

class ConcurrentCacheTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrentCacheTest, MissThenHitSingleThread) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 128;
  auto cache = MakeCache(GetParam(), config);
  EXPECT_FALSE(cache->Get(42));
  EXPECT_TRUE(cache->Get(42));
  EXPECT_TRUE(cache->Get(42));
}

TEST_P(ConcurrentCacheTest, BoundedOccupancySingleThread) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 64;
  auto cache = MakeCache(GetParam(), config);
  for (uint64_t i = 0; i < 10000; ++i) {
    cache->Get(i % 500);
  }
  EXPECT_LE(cache->ApproxSize(), 64u + 4);  // small transient slack allowed
}

TEST_P(ConcurrentCacheTest, HotSetConvergesToHits) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 256;
  auto cache = MakeCache(GetParam(), config);
  uint64_t hits = 0;
  const uint64_t rounds = 200;
  for (uint64_t round = 0; round < rounds; ++round) {
    for (uint64_t id = 0; id < 32; ++id) {
      if (cache->Get(id)) {
        ++hits;
      }
    }
  }
  EXPECT_GT(hits, rounds * 32 * 8 / 10);
}

TEST_P(ConcurrentCacheTest, MultiThreadStress) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 512;
  config.value_size = 32;
  auto cache = MakeCache(GetParam(), config);
  constexpr int kThreads = 4;
  constexpr uint64_t kOps = 50000;
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      ZipfDistribution zipf(5000, 1.0);
      uint64_t local_hits = 0;
      for (uint64_t i = 0; i < kOps; ++i) {
        if (cache->Get(zipf.Sample(rng))) {
          ++local_hits;
        }
      }
      hits.fetch_add(local_hits);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache->ApproxSize(), 512u + kThreads);
  // Post-stress single-thread sanity: the cache still works.
  cache->Get(1 << 30);
  EXPECT_TRUE(cache->Get(1 << 30));
}

// Regression for an OOB read: values smaller than 8 bytes used to be read
// with an unconditional 8-byte memcpy. ASan/valgrind would flag the
// overread; here we just exercise the path for every prototype.
TEST_P(ConcurrentCacheTest, SmallValuesAreReadSafely) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 32;
  config.value_size = 3;  // smaller than the 8-byte read window
  auto cache = MakeCache(GetParam(), config);
  for (uint64_t i = 0; i < 500; ++i) {
    cache->Get(i % 40);
  }
  EXPECT_TRUE(cache->Get(1));
}

TEST_P(ConcurrentCacheTest, StatsCountEveryRequest) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 64;
  auto cache = MakeCache(GetParam(), config);
  constexpr uint64_t kRequests = 5000;
  uint64_t observed_hits = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    if (cache->Get(i % 100)) {
      ++observed_hits;
    }
  }
  const ConcurrentCacheStats stats = cache->Stats();
  EXPECT_EQ(stats.hits, observed_hits);
  EXPECT_EQ(stats.hits + stats.misses, kRequests);
}

TEST_P(ConcurrentCacheTest, ConcurrentSameKeyInsertRace) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 64;
  auto cache = MakeCache(GetParam(), config);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t round = 0; round < 2000; ++round) {
        cache->Get(round % 8);  // heavy same-key contention
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(cache->ApproxSize(), 64u + kThreads);
  EXPECT_TRUE(cache->Get(3));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConcurrentCacheTest,
                         ::testing::Values("lru-strict", "lru-optimized", "clock", "tinylfu",
                                           "s3fifo", "s3fifo-ring"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ConcurrentS3FifoTest, HitPathDoesNotMutateQueues) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 100;
  ConcurrentS3Fifo cache(config);
  cache.Get(1);
  const uint64_t size_after_insert = cache.ApproxSize();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cache.Get(1));
  }
  EXPECT_EQ(cache.ApproxSize(), size_after_insert);
}

// §5.3: "we verified that the miss ratio results from the prototype are
// consistent with the simulator". Replay the same request stream through
// the concurrent prototype (single-threaded, so the comparison is
// deterministic) and the simulator policy.
TEST(PrototypeConsistencyTest, S3FifoPrototypeMatchesSimulator) {
  constexpr uint64_t kObjects = 20000;
  constexpr uint64_t kRequests = 200000;
  constexpr uint64_t kCapacity = 2000;

  ConcurrentCacheConfig cc;
  cc.capacity_objects = kCapacity;
  cc.value_size = 16;
  cc.cache_shards = 1;  // unsharded: decision sequence matches the simulator
  ConcurrentS3Fifo prototype(cc);

  CacheConfig sc;
  sc.capacity = kCapacity;
  sc.params = "ghost_type=table";  // the prototype uses the fingerprint table
  auto simulated = CreateCache("s3fifo", sc);

  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(31);
  uint64_t proto_hits = 0, sim_hits = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    const uint64_t id = zipf.Sample(rng);
    if (prototype.Get(id)) {
      ++proto_hits;
    }
    Request r;
    r.id = id;
    if (simulated->Get(r)) {
      ++sim_hits;
    }
  }
  const double proto_mr = 1.0 - static_cast<double>(proto_hits) / kRequests;
  const double sim_mr = 1.0 - static_cast<double>(sim_hits) / kRequests;
  EXPECT_NEAR(proto_mr, sim_mr, 0.01);
}

TEST(PrototypeConsistencyTest, ClockPrototypeMatchesSimulator) {
  constexpr uint64_t kObjects = 20000;
  constexpr uint64_t kRequests = 200000;
  constexpr uint64_t kCapacity = 2000;

  ConcurrentCacheConfig cc;
  cc.capacity_objects = kCapacity;
  cc.value_size = 16;
  cc.cache_shards = 1;  // unsharded: decision sequence matches the simulator
  ConcurrentClock prototype(cc);

  CacheConfig sc;
  sc.capacity = kCapacity;
  auto simulated = CreateCache("clock", sc);

  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(33);
  uint64_t proto_hits = 0, sim_hits = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    const uint64_t id = zipf.Sample(rng);
    if (prototype.Get(id)) {
      ++proto_hits;
    }
    Request r;
    r.id = id;
    if (simulated->Get(r)) {
      ++sim_hits;
    }
  }
  const double proto_mr = 1.0 - static_cast<double>(proto_hits) / kRequests;
  const double sim_mr = 1.0 - static_cast<double>(sim_hits) / kRequests;
  EXPECT_NEAR(proto_mr, sim_mr, 0.01);
}

// Sharding determinism: a single-threaded replay through the sharded cache
// must land within a small tolerance of the unsharded (shards=1) hit ratio —
// hash partitioning redistributes capacity but must not change behaviour
// qualitatively.
TEST(PrototypeConsistencyTest, ShardedReplayMatchesUnsharded) {
  constexpr uint64_t kObjects = 20000;
  constexpr uint64_t kRequests = 200000;
  constexpr uint64_t kCapacity = 2000;

  ConcurrentCacheConfig sharded_cfg;
  sharded_cfg.capacity_objects = kCapacity;
  sharded_cfg.value_size = 16;
  sharded_cfg.cache_shards = 8;
  ConcurrentS3Fifo sharded(sharded_cfg);

  ConcurrentCacheConfig flat_cfg = sharded_cfg;
  flat_cfg.cache_shards = 1;
  ConcurrentS3Fifo flat(flat_cfg);

  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(47);
  uint64_t sharded_hits = 0, flat_hits = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    const uint64_t id = zipf.Sample(rng);
    if (sharded.Get(id)) {
      ++sharded_hits;
    }
    if (flat.Get(id)) {
      ++flat_hits;
    }
  }
  const double sharded_ratio = static_cast<double>(sharded_hits) / kRequests;
  const double flat_ratio = static_cast<double>(flat_hits) / kRequests;
  EXPECT_NEAR(sharded_ratio, flat_ratio, 0.02);
}

TEST(ConcurrentClockTest, RefBitGivesSecondChance) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 3;
  ConcurrentClock cache(config);
  cache.Get(1);
  cache.Get(2);
  cache.Get(3);
  cache.Get(1);  // ref bit set
  cache.Get(4);  // clock sweep: 1 spared
  EXPECT_TRUE(cache.Get(1));
}

}  // namespace
}  // namespace s3fifo
