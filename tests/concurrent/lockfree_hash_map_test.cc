// LockFreeHashMap + EbrDomain: single-thread semantics (insert / find /
// tombstone erase / rebuild) and lock-free readers racing a writer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/concurrent/ebr.h"
#include "src/concurrent/lockfree_hash_map.h"

namespace s3fifo {
namespace {

struct Node {
  explicit Node(uint64_t k) : key(k) {}
  uint64_t key;
};

void RetireNode(Node* n) {
  EbrDomain::Instance().Retire(n, [](void* p) { delete static_cast<Node*>(p); });
}

TEST(LockFreeHashMapTest, InsertFindErase) {
  LockFreeHashMap<Node*> map(64, 4);
  EbrDomain::Guard guard;
  EXPECT_EQ(map.Find(7), nullptr);

  Node* n = new Node(7);
  EXPECT_TRUE(map.InsertIfAbsent(7, n));
  EXPECT_FALSE(map.InsertIfAbsent(7, n));  // live entry already present
  EXPECT_EQ(map.Find(7), n);
  EXPECT_EQ(map.Size(), 1u);

  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.Erase(7));
  RetireNode(n);
}

TEST(LockFreeHashMapTest, EraseIfOnlyRemovesMatchingValue) {
  LockFreeHashMap<Node*> map(64, 1);
  EbrDomain::Guard guard;
  Node* a = new Node(11);
  ASSERT_TRUE(map.InsertIfAbsent(11, a));
  Node other(11);
  EXPECT_FALSE(map.EraseIf(11, [&](Node* v) { return v == &other; }));
  EXPECT_EQ(map.Find(11), a);
  EXPECT_TRUE(map.EraseIf(11, [&](Node* v) { return v == a; }));
  EXPECT_EQ(map.Find(11), nullptr);
  RetireNode(a);
}

TEST(LockFreeHashMapTest, TombstoneSlotIsReused) {
  LockFreeHashMap<Node*> map(64, 1);
  EbrDomain::Guard guard;
  Node* a = new Node(5);
  ASSERT_TRUE(map.InsertIfAbsent(5, a));
  ASSERT_TRUE(map.Erase(5));
  RetireNode(a);
  Node* b = new Node(5);
  EXPECT_TRUE(map.InsertIfAbsent(5, b));
  EXPECT_EQ(map.Find(5), b);
  ASSERT_TRUE(map.Erase(5));
  RetireNode(b);
}

// Sized for 4 entries but loaded with 4096: growth happens through repeated
// occupancy-triggered rebuilds, which must preserve every live entry.
TEST(LockFreeHashMapTest, RebuildPreservesEntriesUnderGrowth) {
  LockFreeHashMap<Node*> map(4, 1);
  EbrDomain::Guard guard;
  std::vector<Node*> nodes;
  constexpr uint64_t kN = 4096;
  for (uint64_t k = 0; k < kN; ++k) {
    nodes.push_back(new Node(k));
    ASSERT_TRUE(map.InsertIfAbsent(k, nodes.back()));
  }
  EXPECT_EQ(map.Size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(map.Find(k), nodes[k]) << k;
  }
  // Churn: erase the even keys, confirm odd survive further rebuilds.
  for (uint64_t k = 0; k < kN; k += 2) {
    ASSERT_TRUE(map.Erase(k));
    RetireNode(nodes[k]);
  }
  for (uint64_t k = kN; k < kN + 512; ++k) {
    nodes.push_back(new Node(k));
    ASSERT_TRUE(map.InsertIfAbsent(k, nodes.back()));
  }
  for (uint64_t k = 1; k < kN; k += 2) {
    ASSERT_EQ(map.Find(k), nodes[k]) << k;
  }
  for (uint64_t k = 1; k < kN; k += 2) {
    ASSERT_TRUE(map.Erase(k));
    RetireNode(nodes[k]);
  }
  for (uint64_t k = kN; k < kN + 512; ++k) {
    ASSERT_TRUE(map.Erase(k));
    RetireNode(nodes[k]);
  }
}

// Readers probe lock-free while a writer churns the same keyspace through
// inserts, erases and rebuilds. A found value must always match its key —
// the publication order (value release-published last, read first) makes a
// torn (key, value) pairing impossible.
TEST(LockFreeHashMapTest, LockFreeReadersRacingWriterSeeConsistentPairs) {
  LockFreeHashMap<Node*> map(32, 2);
  constexpr uint64_t kKeys = 256;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> found{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t local_found = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t k = 0; k < kKeys; ++k) {
          EbrDomain::Guard guard;
          if (Node* n = map.Find(k)) {
            ASSERT_EQ(n->key, k);
            ++local_found;
          }
        }
      }
      found.fetch_add(local_found);
    });
  }

  std::thread writer([&] {
    for (int round = 0; round < 400; ++round) {
      for (uint64_t k = 0; k < kKeys; ++k) {
        Node* n = new Node(k);
        if (!map.InsertIfAbsent(k, n)) {
          delete n;
        }
      }
      for (uint64_t k = round % 2; k < kKeys; k += 2) {
        Node* victim = nullptr;
        {
          EbrDomain::Guard guard;
          victim = map.Find(k);
        }
        if (victim != nullptr &&
            map.EraseIf(k, [victim](Node* v) { return v == victim; })) {
          RetireNode(victim);
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_GT(found.load(), 0u);

  EbrDomain::Guard guard;
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (Node* n = map.Find(k)) {
      ASSERT_TRUE(map.EraseIf(k, [n](Node* v) { return v == n; }));
      RetireNode(n);
    }
  }
}

TEST(EbrDomainTest, RetireDefersUntilReclaim) {
  static std::atomic<int> frees{0};
  struct Tracked {};
  const int before = frees.load();
  EbrDomain::Instance().Retire(new Tracked, [](void* p) {
    delete static_cast<Tracked*>(p);
    frees.fetch_add(1);
  });
  EbrDomain::Instance().ReclaimAll(/*force=*/true);
  EXPECT_GE(frees.load(), before + 1);
}

TEST(EbrDomainTest, GuardNests) {
  EbrDomain::Guard outer;
  {
    EbrDomain::Guard inner;
  }
  // Still pinned here; retire + force-reclaim from another thread must not
  // free under us — exercised implicitly by TSan/ASan builds of the racing
  // test above. This test just checks nesting doesn't crash or unpin early.
  SUCCEED();
}

}  // namespace
}  // namespace s3fifo
