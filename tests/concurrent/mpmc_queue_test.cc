#include "src/concurrent/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace s3fifo {
namespace {

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPush(i));
  }
  EXPECT_FALSE(q.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(q.TryPop(&v));  // empty
}

TEST(MpmcQueueTest, CapacityRoundedToPowerOfTwo) {
  MpmcQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
}

TEST(MpmcQueueTest, WrapAroundManyTimes) {
  MpmcQueue<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.TryPush(round));
    int v = -1;
    ASSERT_TRUE(q.TryPop(&v));
    ASSERT_EQ(v, round);
  }
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersConserveSum) {
  MpmcQueue<uint64_t> q(1024);
  constexpr int kProducers = 2, kConsumers = 2;
  constexpr uint64_t kPerProducer = 100000;
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<uint64_t> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!q.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (true) {
        if (q.TryPop(&v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (done.load(std::memory_order_acquire)) {
          while (q.TryPop(&v)) {  // final drain
            consumed_sum.fetch_add(v, std::memory_order_relaxed);
            consumed_count.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }
  // Drain leftovers on this thread.
  uint64_t v;
  while (q.TryPop(&v)) {
    consumed_sum.fetch_add(v);
    consumed_count.fetch_add(1);
  }
  const uint64_t n = kProducers * kPerProducer;
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    expected += i;
  }
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), expected);
}

}  // namespace
}  // namespace s3fifo
