#include "src/concurrent/replay.h"

#include <gtest/gtest.h>

#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"

namespace s3fifo {
namespace {

TEST(ReplayTest, ReportsThroughputAndHitRatio) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 1 << 12;
  config.value_size = 16;
  ConcurrentS3Fifo cache(config);
  ReplayOptions options;
  options.num_threads = 2;
  options.requests_per_thread = 50000;
  options.num_objects = 1 << 14;
  options.zipf_alpha = 1.0;
  const ReplayResult r = ReplayClosedLoop(cache, options);
  EXPECT_EQ(r.total_requests, 100000u);
  EXPECT_GT(r.throughput_mops, 0.0);
  EXPECT_GT(r.hit_ratio, 0.3);  // zipf 1.0 with 25% cache
  EXPECT_LT(r.hit_ratio, 1.0);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(ReplayTest, HitRatioConsistentAcrossCaches) {
  // Same workload and cache size: LRU and S3-FIFO hit ratios should be in
  // the same ballpark (both sane cache policies).
  ReplayOptions options;
  options.num_threads = 1;
  options.requests_per_thread = 80000;
  options.num_objects = 1 << 14;
  options.zipf_alpha = 1.0;

  ConcurrentCacheConfig config;
  config.capacity_objects = 1 << 12;
  config.value_size = 16;
  ConcurrentLruStrict lru(config);
  ConcurrentS3Fifo s3(config);
  const double hr_lru = ReplayClosedLoop(lru, options).hit_ratio;
  const double hr_s3 = ReplayClosedLoop(s3, options).hit_ratio;
  EXPECT_NEAR(hr_lru, hr_s3, 0.15);
}

TEST(ReplayTest, SingleThreadDeterministicHitRatio) {
  ReplayOptions options;
  options.num_threads = 1;
  options.requests_per_thread = 30000;
  options.num_objects = 1 << 12;
  options.seed = 99;

  ConcurrentCacheConfig config;
  config.capacity_objects = 1 << 10;
  config.value_size = 16;
  ConcurrentLruStrict a(config), b(config);
  EXPECT_DOUBLE_EQ(ReplayClosedLoop(a, options).hit_ratio,
                   ReplayClosedLoop(b, options).hit_ratio);
}

}  // namespace
}  // namespace s3fifo
