// Heavier mixed-operation stress for the sharded concurrent caches,
// intended to run under ThreadSanitizer (ctest label "concurrent"; folded
// into tier1 when S3FIFO_STRESS_TIER1=ON, which the tsan preset sets).
//
// Each prototype is hammered by >= 4 threads mixing three access patterns —
// zipf-skewed gets (hit-heavy), a sequential scan (miss/evict-heavy), and
// same-key storms (insert-race-heavy) — then checked for bounded occupancy,
// exact request accounting, and post-stress usability.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_lru.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/concurrent_s3fifo_ring.h"
#include "src/concurrent/concurrent_tinylfu.h"
#include "src/concurrent/ebr.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace s3fifo {
namespace {

std::unique_ptr<ConcurrentCache> MakeCache(const std::string& kind,
                                           const ConcurrentCacheConfig& config) {
  if (kind == "lru-strict") {
    return std::make_unique<ConcurrentLruStrict>(config);
  }
  if (kind == "lru-optimized") {
    return std::make_unique<ConcurrentLruOptimized>(config);
  }
  if (kind == "clock") {
    return std::make_unique<ConcurrentClock>(config);
  }
  if (kind == "tinylfu") {
    return std::make_unique<ConcurrentTinyLfu>(config);
  }
  if (kind == "s3fifo-ring") {
    return std::make_unique<ConcurrentS3FifoRing>(config);
  }
  return std::make_unique<ConcurrentS3Fifo>(config);
}

class ShardedStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedStressTest, MixedOpsManyThreads) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 1024;
  config.value_size = 24;  // deliberately not a multiple of 8
  auto cache = MakeCache(GetParam(), config);

  constexpr int kThreads = 6;
  constexpr uint64_t kOpsPerThread = 20000;
  std::atomic<uint64_t> total_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + t);
      ZipfDistribution zipf(20000, 1.0);
      uint64_t local_hits = 0;
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        uint64_t id;
        switch (i % 4) {
          case 0:
          case 1:
            id = zipf.Sample(rng);  // skewed, hit-heavy
            break;
          case 2:
            id = 1'000'000 + (t * kOpsPerThread + i);  // scan, evict-heavy
            break;
          default:
            id = i % 4 + t % 2;  // same-key storm across threads
            break;
        }
        if (cache->Get(id)) {
          ++local_hits;
        }
      }
      total_hits.fetch_add(local_hits);
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_GT(total_hits.load(), 0u);
  // Transient over-admission is bounded by in-flight inserts (~one per
  // thread) plus unprocessed delegated work (one pending ring per shard).
  EXPECT_LE(cache->ApproxSize(), config.capacity_objects + kThreads + 256);
  const ConcurrentCacheStats stats = cache->Stats();
  EXPECT_EQ(stats.hits, total_hits.load());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);

  // Post-stress single-thread sanity: cache still admits and serves.
  cache->Get(1u << 30);
  EXPECT_TRUE(cache->Get(1u << 30));
}

TEST_P(ShardedStressTest, ChurnThenDrainReclaimsWithoutCrashing) {
  ConcurrentCacheConfig config;
  config.capacity_objects = 256;
  config.value_size = 8;
  auto cache = MakeCache(GetParam(), config);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // All-miss churn: maximum eviction + EBR retire pressure.
      for (uint64_t i = 0; i < 8000; ++i) {
        cache->Get((static_cast<uint64_t>(t) << 40) + i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(cache->ApproxSize(), config.capacity_objects + kThreads + 256);
  EbrDomain::Instance().ReclaimAll();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ShardedStressTest,
                         ::testing::Values("lru-strict", "lru-optimized", "clock", "tinylfu",
                                           "s3fifo", "s3fifo-ring"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace s3fifo
