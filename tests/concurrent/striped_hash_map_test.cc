#include "src/concurrent/striped_hash_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace s3fifo {
namespace {

TEST(StripedHashMapTest, BasicOps) {
  StripedHashMap<int> map(8);
  EXPECT_TRUE(map.Insert(1, 10));
  EXPECT_FALSE(map.Insert(1, 20));  // overwrite, not new
  int v = 0;
  EXPECT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_FALSE(map.Erase(1));
}

TEST(StripedHashMapTest, InsertIfAbsent) {
  StripedHashMap<int> map(8);
  EXPECT_TRUE(map.InsertIfAbsent(1, 10));
  EXPECT_FALSE(map.InsertIfAbsent(1, 20));
  int v = 0;
  map.Find(1, &v);
  EXPECT_EQ(v, 10);  // first insert won
}

TEST(StripedHashMapTest, EraseIf) {
  StripedHashMap<int> map(8);
  map.Insert(1, 10);
  EXPECT_FALSE(map.EraseIf(1, [](int v) { return v == 99; }));
  EXPECT_TRUE(map.Contains(1));
  EXPECT_TRUE(map.EraseIf(1, [](int v) { return v == 10; }));
  EXPECT_FALSE(map.Contains(1));
}

TEST(StripedHashMapTest, WithValueRunsUnderLock) {
  StripedHashMap<int> map(8);
  map.Insert(5, 50);
  const int result = map.WithValue(5, [](int* v) { return v == nullptr ? -1 : *v; });
  EXPECT_EQ(result, 50);
  const int absent = map.WithValue(6, [](int* v) { return v == nullptr ? -1 : *v; });
  EXPECT_EQ(absent, -1);
}

TEST(StripedHashMapTest, SizeAggregatesShards) {
  StripedHashMap<int> map(4);
  for (uint64_t i = 0; i < 1000; ++i) {
    map.Insert(i, static_cast<int>(i));
  }
  EXPECT_EQ(map.Size(), 1000u);
}

TEST(StripedHashMapTest, ConcurrentInsertFind) {
  StripedHashMap<uint64_t> map(16);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        map.Insert(key, key * 2);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(map.Size(), kThreads * kPerThread);
  uint64_t v = 0;
  ASSERT_TRUE(map.Find(3 * kPerThread + 7, &v));
  EXPECT_EQ(v, (3 * kPerThread + 7) * 2);
}

TEST(StripedHashMapTest, ConcurrentInsertIfAbsentExactlyOneWinner) {
  StripedHashMap<int> map(16);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t key = 0; key < 1000; ++key) {
        if (map.InsertIfAbsent(key, t)) {
          winners.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(winners.load(), 1000);
}

}  // namespace
}  // namespace s3fifo
