#include "src/flash/admission.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

AdmissionCandidate Candidate(uint64_t id, uint32_t reads, uint64_t residency = 100) {
  AdmissionCandidate c;
  c.id = id;
  c.size = 4096;
  c.dram_reads = reads;
  c.dram_residency = residency;
  c.now = 1000;
  return c;
}

TEST(AdmissionTest, AdmitAllAlwaysTrue) {
  AdmitAll policy;
  EXPECT_TRUE(policy.Admit(Candidate(1, 0)));
  EXPECT_TRUE(policy.Admit(Candidate(2, 100)));
}

TEST(AdmissionTest, ProbabilisticMatchesRate) {
  ProbabilisticAdmission policy(0.2, 7);
  int admitted = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (policy.Admit(Candidate(i, 0))) {
      ++admitted;
    }
  }
  EXPECT_NEAR(static_cast<double>(admitted) / n, 0.2, 0.01);
}

TEST(AdmissionTest, S3FifoAdmitsOnReads) {
  S3FifoAdmission policy(1);
  EXPECT_FALSE(policy.Admit(Candidate(1, 0)));
  EXPECT_TRUE(policy.Admit(Candidate(2, 1)));
  EXPECT_TRUE(policy.Admit(Candidate(3, 5)));
}

TEST(AdmissionTest, S3FifoThresholdTwo) {
  S3FifoAdmission policy(2);
  EXPECT_FALSE(policy.Admit(Candidate(1, 1)));
  EXPECT_TRUE(policy.Admit(Candidate(2, 2)));
}

TEST(AdmissionTest, FlashieldLearnsToPreferReadObjects) {
  FlashieldAdmission policy(1000, 3);
  // Feedback loop: objects with reads are flashy, read-free ones are not.
  for (int round = 0; round < 2000; ++round) {
    policy.Admit(Candidate(round * 2, 3));      // flashy
    const uint64_t cold = round * 2 + 1;
    if (!policy.Admit(Candidate(cold, 0))) {
      // cold objects genuinely never return: no OnRejectedReuse call.
    }
  }
  // After training, read-heavy candidates admitted, read-free rejected.
  int hot_admitted = 0, cold_admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (policy.Admit(Candidate(1000000 + i, 4))) {
      ++hot_admitted;
    }
    if (policy.Admit(Candidate(2000000 + i, 0))) {
      ++cold_admitted;
    }
  }
  EXPECT_GT(hot_admitted, 80);
  EXPECT_LT(cold_admitted, 20);
}

TEST(AdmissionTest, FlashieldRejectedReuseFeedback) {
  FlashieldAdmission policy(1000, 5);
  // Train hard toward rejecting read-free objects...
  for (int i = 0; i < 3000; ++i) {
    policy.Admit(Candidate(i, 0));
  }
  // ...then deliver "it came back" feedback; weights must move toward
  // admitting (the bias increases).
  int admitted_before = 0;
  for (int i = 0; i < 100; ++i) {
    if (policy.Admit(Candidate(500000 + i, 0))) {
      ++admitted_before;
    }
  }
  for (int i = 0; i < 5000; ++i) {
    policy.Admit(Candidate(700000 + i, 0));
    policy.OnRejectedReuse(700000 + i, 10);
  }
  int admitted_after = 0;
  for (int i = 0; i < 100; ++i) {
    if (policy.Admit(Candidate(900000 + i, 0))) {
      ++admitted_after;
    }
  }
  EXPECT_GE(admitted_after, admitted_before);
}

TEST(AdmissionTest, FactoryCreatesAllPolicies) {
  for (const char* name : {"none", "probabilistic", "flashield", "s3fifo"}) {
    auto policy = CreateAdmissionPolicy(name, 1000, 1);
    ASSERT_NE(policy, nullptr) << name;
  }
  EXPECT_THROW(CreateAdmissionPolicy("bogus", 1000, 1), std::invalid_argument);
}

}  // namespace
}  // namespace s3fifo
