#include "src/flash/flash_cache.h"

#include <gtest/gtest.h>

#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace CdnTrace(uint64_t seed) {
  ZipfWorkloadConfig c;
  c.num_objects = 2000;
  c.num_requests = 40000;
  c.alpha = 0.9;
  c.new_object_fraction = 0.15;
  c.size_sigma = 0.8;
  c.size_mean_bytes = 8192;
  c.seed = seed;
  return GenerateZipfTrace(c);
}

FlashCacheConfig Config(DramDiscipline discipline, uint64_t flash_bytes = 8 << 20,
                        uint64_t dram_bytes = 512 << 10) {
  FlashCacheConfig c;
  c.flash_capacity_bytes = flash_bytes;
  c.dram_capacity_bytes = dram_bytes;
  c.dram_discipline = discipline;
  return c;
}

TEST(FlashCacheTest, TiersStayWithinCapacity) {
  FlashCacheSim sim(Config(DramDiscipline::kLru), std::make_unique<AdmitAll>());
  Trace t = CdnTrace(1);
  for (const Request& r : t.requests()) {
    sim.Get(r);
    ASSERT_LE(sim.dram_occupied(), 512u << 10);
    ASSERT_LE(sim.flash_occupied(), 8u << 20);
  }
}

TEST(FlashCacheTest, DramHitThenFlashHit) {
  FlashCacheSim sim(Config(DramDiscipline::kLru, 8 << 20, 16 << 10),
                    std::make_unique<AdmitAll>());
  Request a;
  a.id = 1;
  a.size = 4096;
  EXPECT_FALSE(sim.Get(a));  // miss -> DRAM
  EXPECT_TRUE(sim.Get(a));   // DRAM hit
  // Push id 1 out of the small DRAM into flash.
  for (uint64_t i = 2; i < 10; ++i) {
    Request r;
    r.id = i;
    r.size = 4096;
    sim.Get(r);
  }
  EXPECT_TRUE(sim.Get(a));  // now a flash hit
  EXPECT_GE(sim.stats().flash_hits, 1u);
}

TEST(FlashCacheTest, NoAdmissionWritesEverythingEvicted) {
  FlashCacheStats all = SimulateFlashCache(CdnTrace(2), Config(DramDiscipline::kLru),
                                           std::make_unique<AdmitAll>());
  FlashCacheStats prob = SimulateFlashCache(CdnTrace(2), Config(DramDiscipline::kLru),
                                            std::make_unique<ProbabilisticAdmission>(0.2));
  EXPECT_GT(all.flash_write_bytes, 3 * prob.flash_write_bytes);
}

TEST(FlashCacheTest, ProbabilisticTradesMissRatioForWrites) {
  // Fig. 9: probabilistic admission reduces writes but raises the miss
  // ratio relative to no admission control.
  FlashCacheStats all = SimulateFlashCache(CdnTrace(3), Config(DramDiscipline::kLru),
                                           std::make_unique<AdmitAll>());
  FlashCacheStats prob = SimulateFlashCache(CdnTrace(3), Config(DramDiscipline::kLru),
                                            std::make_unique<ProbabilisticAdmission>(0.2));
  EXPECT_LT(all.MissRatio(), prob.MissRatio());
  EXPECT_LT(prob.flash_write_bytes, all.flash_write_bytes);
}

TEST(FlashCacheTest, S3FifoAdmissionReducesWritesAndMissRatio) {
  // The paper's headline flash result: the small-FIFO filter cuts writes
  // versus no admission while keeping the miss ratio at least as good as
  // probabilistic admission.
  Trace t = CdnTrace(4);
  FlashCacheStats all = SimulateFlashCache(t, Config(DramDiscipline::kLru),
                                           std::make_unique<AdmitAll>());
  FlashCacheStats prob = SimulateFlashCache(t, Config(DramDiscipline::kLru),
                                            std::make_unique<ProbabilisticAdmission>(0.2));
  FlashCacheStats s3 = SimulateFlashCache(t, Config(DramDiscipline::kSmallFifo),
                                          std::make_unique<S3FifoAdmission>(1));
  EXPECT_LT(s3.flash_write_bytes, all.flash_write_bytes);
  EXPECT_LT(s3.MissRatio(), prob.MissRatio());
}

TEST(FlashCacheTest, GhostPathWritesStraightToFlash) {
  FlashCacheConfig config = Config(DramDiscipline::kSmallFifo, 8 << 20, 8 << 10);
  FlashCacheSim sim(config, std::make_unique<S3FifoAdmission>(1));
  Request a;
  a.id = 1;
  a.size = 4096;
  sim.Get(a);  // -> DRAM
  // Evict id 1 (no reads): rejected, remembered in the ghost.
  for (uint64_t i = 2; i < 6; ++i) {
    Request r;
    r.id = i;
    r.size = 4096;
    sim.Get(r);
  }
  const uint64_t writes_before = sim.stats().flash_write_bytes;
  EXPECT_FALSE(sim.Get(a));  // ghost hit: goes to flash, still a miss
  EXPECT_GT(sim.stats().flash_write_bytes, writes_before);
  EXPECT_TRUE(sim.Get(a));  // flash hit now
}

TEST(FlashCacheTest, ObjectLargerThanDramGoesThroughAdmission) {
  FlashCacheConfig config = Config(DramDiscipline::kLru, 8 << 20, 4 << 10);
  FlashCacheSim sim(config, std::make_unique<AdmitAll>());
  Request big;
  big.id = 9;
  big.size = 64 << 10;  // larger than DRAM
  EXPECT_FALSE(sim.Get(big));
  EXPECT_TRUE(sim.Get(big));  // admitted directly to flash
}

TEST(FlashCacheTest, StatsAddUp) {
  Trace t = CdnTrace(5);
  FlashCacheStats s = SimulateFlashCache(t, Config(DramDiscipline::kLru),
                                         std::make_unique<AdmitAll>());
  EXPECT_EQ(s.dram_hits + s.flash_hits + s.misses, s.requests);
  EXPECT_GE(s.bytes_requested, s.bytes_missed);
}

}  // namespace
}  // namespace s3fifo
