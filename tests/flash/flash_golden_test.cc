// Golden fingerprints behind the Fig. 9/10 flash rows: exact miss counts and
// device-bytes-written for every admission policy on both flash backends, and
// for FIFO vs RIPQ log ordering. Everything is integer and fully
// deterministic (in-repo trace generator, deterministic GC victim order), so
// these constants must reproduce on every platform. If one moves, either a
// hot-path change perturbed the published figures (fix it) or semantics
// changed deliberately (update the constant in the same PR that documents
// why). In particular these pin the FlatMap ports of FlashCacheSim and
// FlashieldAdmission bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/flash/flash_cache.h"
#include "src/flash/log_flash_cache.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// A scaled-down fig09 cell: log-normal ~4KB objects, flash = 10% of
// footprint, DRAM = 1% of flash (the middle fig09 row).
Trace GoldenTrace() {
  ZipfWorkloadConfig wc;
  wc.num_objects = 4000;
  wc.num_requests = 60000;
  wc.alpha = 1.0;
  wc.size_mean_bytes = 4096;
  wc.size_sigma = 0.6;
  wc.seed = 11;
  return GenerateZipfTrace(wc);
}

struct FlashGolden {
  const char* admission;
  uint64_t sim_misses;       // FlashCacheSim (abstract byte-FIFO flash)
  uint64_t sim_write_bytes;
  uint64_t log_misses;       // LogStructuredFlashCache, FIFO ordering
  uint64_t log_device_bytes;
};

TEST(FlashGoldenTest, Fig09AdmissionFingerprints) {
  const Trace trace = GoldenTrace();
  const uint64_t footprint = trace.Stats().footprint_bytes;
  const uint64_t flash_bytes = footprint / 10;
  const uint64_t dram_bytes = flash_bytes / 100;
  const uint64_t segment_bytes = 64 * 1024;

  // Paper shape, visible right in the constants: "none" writes the most
  // device bytes; flashield at 1% DRAM rejects nearly everything and misses
  // the most; the s3fifo filter gets BOTH the fewest misses and ~3.5x fewer
  // device bytes than no-admission.
  const FlashGolden cases[] = {
      {"none", 24862, 101250165, 21856, 129239995},
      {"probabilistic", 25180, 20681079, 20403, 38359359},
      {"flashield", 29288, 523582, 29238, 524205},
      {"s3fifo", 20952, 17661259, 18728, 36426069},
  };
  for (const FlashGolden& c : cases) {
    const DramDiscipline discipline = std::string(c.admission) == "s3fifo"
                                          ? DramDiscipline::kSmallFifo
                                          : DramDiscipline::kLru;
    {
      FlashCacheConfig config;
      config.flash_capacity_bytes = flash_bytes;
      config.dram_capacity_bytes = dram_bytes;
      config.dram_discipline = discipline;
      const FlashCacheStats stats = SimulateFlashCache(
          trace, config, CreateAdmissionPolicy(c.admission, trace.size() / 10, 11));
      EXPECT_EQ(stats.misses, c.sim_misses) << c.admission << " (sim)";
      EXPECT_EQ(stats.flash_write_bytes, c.sim_write_bytes) << c.admission << " (sim)";
    }
    {
      LogFlashCacheConfig config;
      config.dram_capacity_bytes = dram_bytes;
      config.dram_discipline = discipline;
      config.log.segment_bytes = segment_bytes;
      config.log.num_segments = flash_bytes / segment_bytes;
      const LogFlashCacheStats stats = SimulateLogFlashCache(
          trace, config, CreateAdmissionPolicy(c.admission, trace.size() / 10, 11));
      EXPECT_EQ(stats.misses, c.log_misses) << c.admission << " (log)";
      const LogFlashCacheConfig config2 = config;
      LogStructuredFlashCache cache(config2,
                                    CreateAdmissionPolicy(c.admission, trace.size() / 10, 11));
      for (const Request& r : trace.requests()) {
        cache.Get(r);
      }
      EXPECT_EQ(cache.DeviceBytesWritten(), c.log_device_bytes) << c.admission << " (log)";
    }
  }
}

struct OrderingGolden {
  LogOrdering ordering;
  bool gc_readmit;
  uint64_t misses;
  uint64_t device_bytes;
  uint64_t gc_rewrite_bytes;
};

TEST(FlashGoldenTest, Fig10OrderingFingerprints) {
  // FIFO-no-readmit vs FIFO-readmit vs RIPQ at a tight segment budget: the
  // orderings must disagree (different victim survival) and each row is
  // pinned exactly.
  const Trace trace = GoldenTrace();
  const uint64_t footprint = trace.Stats().footprint_bytes;
  const uint64_t segment_bytes = 64 * 1024;

  // RIPQ buys the lowest miss count at the highest rewrite volume; pure
  // segment FIFO rewrites nothing and misses the most.
  const OrderingGolden cases[] = {
      {LogOrdering::kFifo, false, 31179, 126332139, 0},
      {LogOrdering::kFifo, true, 29006, 268556007, 151130631},
      {LogOrdering::kRipq, true, 27900, 284018792, 171224230},
  };
  for (const OrderingGolden& c : cases) {
    LogFlashCacheConfig config;
    config.dram_capacity_bytes = footprint / 200;
    config.log.segment_bytes = segment_bytes;
    config.log.num_segments = (footprint / 20) / segment_bytes;
    config.log.ordering = c.ordering;
    config.log.gc_readmit = c.gc_readmit;
    config.log.ripq_sections = 4;
    config.log.insert_priority = 1;
    LogStructuredFlashCache cache(config, CreateAdmissionPolicy("none", 100, 1));
    for (const Request& r : trace.requests()) {
      cache.Get(r);
    }
    EXPECT_EQ(cache.stats().misses, c.misses)
        << "ordering=" << static_cast<int>(c.ordering) << " readmit=" << c.gc_readmit;
    EXPECT_EQ(cache.DeviceBytesWritten(), c.device_bytes)
        << "ordering=" << static_cast<int>(c.ordering) << " readmit=" << c.gc_readmit;
    EXPECT_EQ(cache.log_stats().gc_rewrite_bytes, c.gc_rewrite_bytes)
        << "ordering=" << static_cast<int>(c.ordering) << " readmit=" << c.gc_readmit;
  }
}

TEST(FlashGoldenTest, FlashieldFeedbackIsSeedDeterministic) {
  // Two identical runs must agree on every counter: the learned admission's
  // training order, rejected-sample bookkeeping (a FlatMap now), and the
  // rejected-reuse feedback stream are all functions of (trace, seed).
  const Trace trace = GoldenTrace();
  auto run = [&](uint64_t seed) {
    LogFlashCacheConfig config;
    config.dram_capacity_bytes = 256 * 1024;
    config.log.segment_bytes = 64 * 1024;
    config.log.num_segments = 32;
    return SimulateLogFlashCache(trace, config,
                                 CreateAdmissionPolicy("flashield", trace.size() / 10, seed));
  };
  const LogFlashCacheStats a = run(17);
  const LogFlashCacheStats b = run(17);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.log_hits, b.log_hits);
  EXPECT_EQ(a.flash_evictions, b.flash_evictions);
  EXPECT_EQ(a.bytes_missed, b.bytes_missed);
}

TEST(FlashGoldenTest, GcVictimSequenceIsSeedDeterministic) {
  const Trace trace = GoldenTrace();
  auto run = [&] {
    LogFlashCacheConfig config;
    config.dram_capacity_bytes = 128 * 1024;
    config.log.segment_bytes = 64 * 1024;
    config.log.num_segments = 8;
    config.log.ordering = LogOrdering::kRipq;
    LogStructuredFlashCache cache(config, CreateAdmissionPolicy("probabilistic", 100, 23));
    std::vector<uint64_t> victims;
    for (const Request& r : trace.requests()) {
      cache.Get(r);
      victims.push_back(cache.log().last_gc_victim_seq());
    }
    return victims;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace s3fifo
