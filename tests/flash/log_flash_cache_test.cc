// Two-tier log-structured flash cache unit tests: tier routing, the ghost
// S->G->M path, deletes, resize, config round-trip, and the combined
// device-byte accounting.
#include "src/flash/log_flash_cache.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

Request Get(uint64_t id, uint32_t size) {
  Request r;
  r.id = id;
  r.size = size;
  return r;
}

Request Set(uint64_t id, uint32_t size) {
  Request r = Get(id, size);
  r.op = OpType::kSet;
  return r;
}

Request Del(uint64_t id) {
  Request r = Get(id, 0);
  r.op = OpType::kDelete;
  return r;
}

LogFlashCacheConfig SmallConfig() {
  LogFlashCacheConfig config;
  config.dram_capacity_bytes = 100;
  config.log.segment_bytes = 200;
  config.log.num_segments = 4;
  return config;
}

TEST(LogFlashCacheTest, DramEvictionFlowsThroughAdmissionToLog) {
  LogFlashCacheConfig config = SmallConfig();
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("s3fifo", 100, 1));
  EXPECT_FALSE(cache.Get(Get(1, 50)));  // miss -> DRAM
  EXPECT_TRUE(cache.Get(Get(1, 50)));   // DRAM hit: earns the admission read
  cache.Get(Get(2, 50));
  cache.Get(Get(3, 50));  // evicts 1 (1 read -> admitted to the log)
  EXPECT_TRUE(cache.log().Contains(1));
  EXPECT_TRUE(cache.Get(Get(1, 50)));  // flash hit
  EXPECT_EQ(cache.stats().log_hits, 1u);
  EXPECT_EQ(cache.log_stats().admitted_bytes, 50u);
}

TEST(LogFlashCacheTest, ColdEvictionsAreRejectedByS3FifoFilter) {
  LogFlashCacheConfig config = SmallConfig();
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("s3fifo", 100, 1));
  cache.Get(Get(1, 50));
  cache.Get(Get(2, 50));
  cache.Get(Get(3, 50));  // evicts 1 with 0 reads: rejected, no device write
  EXPECT_FALSE(cache.log().Contains(1));
  EXPECT_EQ(cache.DeviceBytesWritten(), 0u);
}

TEST(LogFlashCacheTest, GhostHitPromotesStraightToFlash) {
  LogFlashCacheConfig config = SmallConfig();
  config.dram_discipline = DramDiscipline::kSmallFifo;
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("s3fifo", 100, 1));
  cache.Get(Get(1, 50));
  cache.Get(Get(2, 50));
  cache.Get(Get(3, 50));  // 1 evicted cold -> ghost
  EXPECT_FALSE(cache.log().Contains(1));
  EXPECT_FALSE(cache.Get(Get(1, 50)));  // ghost hit: S->G->M, write to flash
  EXPECT_TRUE(cache.log().Contains(1));
  EXPECT_TRUE(cache.Get(Get(1, 50)));
  EXPECT_EQ(cache.stats().log_hits, 1u);
}

TEST(LogFlashCacheTest, SmallObjectsRouteToSets) {
  LogFlashCacheConfig config = SmallConfig();
  config.small_object_threshold = 32;
  config.set_store.set_bytes = 64;
  config.set_store.num_sets = 4;
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("none", 100, 1));
  cache.Get(Get(1, 10));   // small
  cache.Get(Get(2, 50));   // large
  cache.Get(Get(3, 60));   // push both out of DRAM
  cache.Get(Get(4, 60));
  EXPECT_TRUE(cache.sets().Contains(1));
  EXPECT_TRUE(cache.log().Contains(2));
  EXPECT_FALSE(cache.log().Contains(1));
  EXPECT_FALSE(cache.sets().Contains(2));
  // Set hits and log hits are counted separately.
  cache.Get(Get(1, 10));
  cache.Get(Get(2, 50));
  EXPECT_EQ(cache.stats().set_hits, 1u);
  EXPECT_EQ(cache.stats().log_hits, 1u);
}

TEST(LogFlashCacheTest, DeleteRemovesEveryTier) {
  LogFlashCacheConfig config = SmallConfig();
  config.small_object_threshold = 32;
  config.set_store.set_bytes = 64;
  config.set_store.num_sets = 4;
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("none", 100, 1));
  cache.Get(Get(1, 10));
  cache.Get(Get(2, 50));
  cache.Get(Get(3, 60));
  cache.Get(Get(4, 60));  // 1 -> sets, 2 -> log, 3/4 in DRAM
  EXPECT_FALSE(cache.Get(Del(1)));
  EXPECT_FALSE(cache.Get(Del(2)));
  EXPECT_FALSE(cache.Get(Del(4)));
  EXPECT_FALSE(cache.sets().Contains(1));
  EXPECT_FALSE(cache.log().Contains(2));
  EXPECT_EQ(cache.stats().deletes, 3u);
  // Deletes are not requests: miss ratio unaffected.
  EXPECT_EQ(cache.stats().requests, 4u);
}

TEST(LogFlashCacheTest, SetOverwritesFlashResident) {
  LogFlashCacheConfig config = SmallConfig();
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("none", 100, 1));
  cache.Get(Get(1, 50));
  cache.Get(Get(2, 60));
  cache.Get(Get(3, 60));  // 1 -> log
  ASSERT_TRUE(cache.log().Contains(1));
  EXPECT_TRUE(cache.Get(Set(1, 80)));  // overwrite in place: dead-mark + re-admit
  EXPECT_EQ(cache.log().SizeOf(1), 80u);
  // 1 (50) and 2 (60) admitted on DRAM eviction, then the 80-byte overwrite.
  EXPECT_EQ(cache.log_stats().admitted_bytes, 50u + 60u + 80u);
}

TEST(LogFlashCacheTest, ResizeFlashShrinksSegmentBudget) {
  LogFlashCacheConfig config = SmallConfig();
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("none", 100, 1));
  for (uint64_t id = 1; id <= 20; ++id) {
    cache.Get(Get(id, 60));
  }
  const uint64_t before = cache.stats().flash_evictions;
  cache.ResizeFlash(1);
  EXPECT_LE(cache.log().segments_in_use(), 1u);
  EXPECT_GT(cache.stats().flash_evictions, before);
}

TEST(LogFlashCacheTest, ConfigFormatParseRoundTrip) {
  LogFlashCacheConfig config;
  config.dram_capacity_bytes = 12345;
  config.dram_discipline = DramDiscipline::kSmallFifo;
  config.ghost_entries = 99;
  config.log.segment_bytes = 8192;
  config.log.num_segments = 7;
  config.log.ordering = LogOrdering::kRipq;
  config.log.gc_readmit = false;
  config.log.ripq_sections = 6;
  config.log.insert_priority = 2;
  config.small_object_threshold = 300;
  config.set_store.set_bytes = 512;
  config.set_store.num_sets = 33;

  const LogFlashCacheConfig parsed = ParseLogFlashConfig(FormatLogFlashConfig(config));
  EXPECT_EQ(parsed.dram_capacity_bytes, 12345u);
  EXPECT_EQ(parsed.dram_discipline, DramDiscipline::kSmallFifo);
  EXPECT_EQ(parsed.ghost_entries, 99u);
  EXPECT_EQ(parsed.log.segment_bytes, 8192u);
  EXPECT_EQ(parsed.log.num_segments, 7u);
  EXPECT_EQ(parsed.log.ordering, LogOrdering::kRipq);
  EXPECT_EQ(parsed.log.gc_readmit, false);
  EXPECT_EQ(parsed.log.ripq_sections, 6u);
  EXPECT_EQ(parsed.log.insert_priority, 2u);
  EXPECT_EQ(parsed.small_object_threshold, 300u);
  EXPECT_EQ(parsed.set_store.set_bytes, 512u);
  EXPECT_EQ(parsed.set_store.num_sets, 33u);
}

TEST(LogFlashCacheTest, CombinedDeviceAccounting) {
  LogFlashCacheConfig config = SmallConfig();
  config.small_object_threshold = 32;
  config.set_store.set_bytes = 64;
  config.set_store.num_sets = 2;
  auto cache = LogStructuredFlashCache(config, CreateAdmissionPolicy("none", 100, 1));
  for (uint64_t i = 0; i < 200; ++i) {
    cache.Get(Get(i % 23, (i % 3 == 0) ? 10 : 60));
  }
  EXPECT_EQ(cache.DeviceBytesWritten(), cache.log_stats().device_bytes_written +
                                            cache.set_stats().device_bytes_written);
  EXPECT_EQ(cache.AdmittedBytes(),
            cache.log_stats().admitted_bytes + cache.set_stats().admitted_bytes);
  EXPECT_GE(cache.WriteAmplification(), 1.0);
  // Both components saw traffic.
  EXPECT_GT(cache.log_stats().admitted_bytes, 0u);
  EXPECT_GT(cache.set_stats().page_writes, 0u);
}

}  // namespace
}  // namespace s3fifo
