// Segment log unit tests: seal boundaries, FIFO victim order, one-extra-pass
// readmission, RIPQ promotion/decay, resize, and the byte-conservation
// invariant the differential wall also checks.
#include "src/flash/segment_log.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

SegmentLogConfig SmallLog(uint64_t segment_bytes = 100, uint64_t num_segments = 3) {
  SegmentLogConfig config;
  config.segment_bytes = segment_bytes;
  config.num_segments = num_segments;
  config.gc_readmit = false;  // pure FIFO unless a test opts in
  return config;
}

void ExpectConserved(const SegmentLog& log) {
  const SegmentLogStats& s = log.stats();
  EXPECT_EQ(s.device_bytes_written, s.admitted_bytes + s.gc_rewrite_bytes);
}

TEST(SegmentLogTest, FillsSegmentsBeforeSealing) {
  SegmentLog log(SmallLog());
  // Two 50-byte objects exactly fill one segment; the third forces a seal.
  EXPECT_TRUE(log.Insert(1, 50, nullptr));
  EXPECT_TRUE(log.Insert(2, 50, nullptr));
  EXPECT_EQ(log.segments_in_use(), 1u);
  EXPECT_EQ(log.stats().segments_sealed, 0u);
  EXPECT_TRUE(log.Insert(3, 50, nullptr));
  EXPECT_EQ(log.segments_in_use(), 2u);
  EXPECT_EQ(log.stats().segments_sealed, 1u);
  EXPECT_EQ(log.live_bytes(), 150u);
  EXPECT_EQ(log.live_objects(), 3u);
  ExpectConserved(log);
}

TEST(SegmentLogTest, GcEvictsOldestSegmentWholesale) {
  SegmentLog log(SmallLog(100, 2));
  std::vector<uint64_t> evicted;
  for (uint64_t id = 1; id <= 4; ++id) {
    log.Insert(id, 50, &evicted);  // ids 1,2 in seg A; 3,4 in seg B
  }
  EXPECT_TRUE(evicted.empty());
  log.Insert(5, 50, &evicted);  // opening seg C exceeds the budget: GC seg A
  EXPECT_EQ(evicted, (std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(log.Contains(1));
  EXPECT_FALSE(log.Contains(2));
  EXPECT_TRUE(log.Contains(3));
  EXPECT_TRUE(log.Contains(5));
  EXPECT_EQ(log.stats().segments_gced, 1u);
  EXPECT_EQ(log.stats().dropped_objects, 2u);
  ExpectConserved(log);
}

TEST(SegmentLogTest, FifoReadmitGivesHitObjectsOneExtraPass) {
  SegmentLogConfig config = SmallLog(100, 2);
  config.gc_readmit = true;
  SegmentLog log(config);
  std::vector<uint64_t> evicted;
  log.Insert(1, 50, &evicted);
  log.Insert(2, 50, &evicted);
  EXPECT_TRUE(log.Lookup(1));  // hit bit: survives the next GC
  log.Insert(3, 50, &evicted);
  log.Insert(4, 50, &evicted);
  log.Insert(5, 50, &evicted);  // GC of {1,2}: 1 rewritten, 2 dropped
  EXPECT_EQ(evicted, (std::vector<uint64_t>{2}));
  EXPECT_TRUE(log.Contains(1));
  EXPECT_EQ(log.stats().gc_rewrite_bytes, 50u);
  EXPECT_EQ(log.stats().gc_rewrite_objects, 1u);
  // The rewrite consumed the hit bit: without another Lookup the object is
  // dropped on its second GC pass.
  ExpectConserved(log);
}

TEST(SegmentLogTest, RipqPromotionDecaysAcrossGcPasses) {
  SegmentLogConfig config = SmallLog(100, 2);
  config.ordering = LogOrdering::kRipq;
  config.ripq_sections = 4;
  config.insert_priority = 0;
  SegmentLog log(config);
  std::vector<uint64_t> evicted;
  log.Insert(1, 50, &evicted);
  log.Insert(2, 50, &evicted);
  log.Lookup(1);  // priority 0 -> 1
  log.Lookup(1);  // priority 1 -> 2
  // Two GC passes: priority decays 2 -> 1 -> 0; a third drops it.
  for (int pass = 0; pass < 2; ++pass) {
    evicted.clear();
    uint64_t filler = 100 + pass * 10;
    while (evicted.empty()) {
      log.Insert(filler++, 50, &evicted);
    }
    EXPECT_TRUE(log.Contains(1)) << "pass " << pass;
  }
  evicted.clear();
  uint64_t filler = 200;
  bool gone = false;
  while (!gone && filler < 300) {
    log.Insert(filler++, 50, &evicted);
    gone = !log.Contains(1);
  }
  EXPECT_TRUE(gone);
  ExpectConserved(log);
}

TEST(SegmentLogTest, OverwriteDeadMarksOldCopy) {
  SegmentLog log(SmallLog());
  log.Insert(1, 30, nullptr);
  log.Insert(1, 60, nullptr);
  EXPECT_EQ(log.live_objects(), 1u);
  EXPECT_EQ(log.live_bytes(), 60u);
  EXPECT_EQ(log.SizeOf(1), 60u);
  // Both copies hit the device.
  EXPECT_EQ(log.stats().device_bytes_written, 90u);
  EXPECT_EQ(log.stats().admitted_bytes, 90u);
  ExpectConserved(log);
}

TEST(SegmentLogTest, EraseIsMetadataOnly) {
  SegmentLog log(SmallLog());
  log.Insert(1, 30, nullptr);
  EXPECT_TRUE(log.Erase(1));
  EXPECT_FALSE(log.Erase(1));
  EXPECT_FALSE(log.Contains(1));
  EXPECT_EQ(log.live_bytes(), 0u);
  EXPECT_EQ(log.stats().device_bytes_written, 30u);  // no new bytes
  ExpectConserved(log);
}

TEST(SegmentLogTest, OversizeObjectsAreRejected) {
  SegmentLog log(SmallLog(100, 3));
  std::vector<uint64_t> evicted;
  EXPECT_FALSE(log.Insert(1, 101, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(log.stats().oversize_rejects, 1u);
  EXPECT_EQ(log.stats().device_bytes_written, 0u);
  EXPECT_FALSE(log.Contains(1));
}

TEST(SegmentLogTest, ShrinkingResizeGcsImmediately) {
  SegmentLog log(SmallLog(100, 4));
  std::vector<uint64_t> evicted;
  for (uint64_t id = 1; id <= 8; ++id) {
    log.Insert(id, 50, &evicted);  // 4 segments, all full or open
  }
  EXPECT_TRUE(evicted.empty());
  log.Resize(2, &evicted);
  EXPECT_EQ(log.num_segments(), 2u);
  EXPECT_LE(log.segments_in_use(), 2u);
  EXPECT_EQ(evicted, (std::vector<uint64_t>{1, 2, 3, 4}));
  ExpectConserved(log);
}

TEST(SegmentLogTest, GcVictimSelectionIsDeterministic) {
  // Two identical op sequences must agree on every victim seal sequence and
  // every stats field — the seed-determinism hook the golden tests rely on.
  auto run = [] {
    SegmentLogConfig config = SmallLog(100, 3);
    config.gc_readmit = true;
    SegmentLog log(config);
    std::vector<uint64_t> evicted;
    std::vector<uint64_t> victim_seqs;
    for (uint64_t i = 0; i < 500; ++i) {
      const uint64_t id = (i * 7) % 40;
      if (i % 5 == 0) {
        log.Lookup(id);
      }
      log.Insert(id, 20 + (i % 4) * 15, &evicted);
      victim_seqs.push_back(log.last_gc_victim_seq());
    }
    return std::make_pair(victim_seqs, log.stats());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.device_bytes_written, b.second.device_bytes_written);
  EXPECT_EQ(a.second.gc_rewrite_bytes, b.second.gc_rewrite_bytes);
  EXPECT_EQ(a.second.segments_gced, b.second.segments_gced);
  EXPECT_EQ(a.second.dropped_objects, b.second.dropped_objects);
}

}  // namespace
}  // namespace s3fifo
