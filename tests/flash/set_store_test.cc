// Set-associative small-object store unit tests: hashing, FIFO within a set,
// page-granularity device accounting, metadata-only deletes.
#include "src/flash/set_store.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

SetStoreConfig OneSet(uint64_t set_bytes = 100) {
  SetStoreConfig config;
  config.set_bytes = set_bytes;
  config.num_sets = 1;  // every id collides: FIFO behavior is fully visible
  return config;
}

TEST(SetStoreTest, InsertRewritesWholePage) {
  SetAssocStore store(OneSet(4096));
  store.Insert(1, 100, nullptr);
  store.Insert(2, 10, nullptr);
  EXPECT_EQ(store.stats().page_writes, 2u);
  EXPECT_EQ(store.stats().device_bytes_written, 2u * 4096u);
  EXPECT_EQ(store.stats().admitted_bytes, 110u);
  // Small-object write amplification is the point of the accounting.
  EXPECT_GT(store.stats().WriteAmplification(), 70.0);
}

TEST(SetStoreTest, FifoEvictsOldestWhenSetOverflows) {
  SetAssocStore store(OneSet(100));
  std::vector<uint64_t> evicted;
  store.Insert(1, 40, &evicted);
  store.Insert(2, 40, &evicted);
  EXPECT_TRUE(evicted.empty());
  store.Insert(3, 40, &evicted);  // needs 120 bytes: evict 1
  EXPECT_EQ(evicted, (std::vector<uint64_t>{1}));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  EXPECT_TRUE(store.Contains(3));
  EXPECT_EQ(store.live_bytes(), 80u);
  EXPECT_EQ(store.stats().dropped_objects, 1u);
}

TEST(SetStoreTest, OverwritePreservesNoOrder) {
  SetAssocStore store(OneSet(100));
  std::vector<uint64_t> evicted;
  store.Insert(1, 40, &evicted);
  store.Insert(2, 40, &evicted);
  store.Insert(1, 20, &evicted);  // overwrite: drop old copy, append at tail
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(store.live_bytes(), 60u);
  EXPECT_EQ(store.SizeOf(1), 20u);
  store.Insert(3, 50, &evicted);  // 110 bytes: oldest is now 2
  EXPECT_EQ(evicted, (std::vector<uint64_t>{2}));
  EXPECT_TRUE(store.Contains(1));
}

TEST(SetStoreTest, EraseChargesNoDeviceBytes) {
  SetAssocStore store(OneSet(100));
  store.Insert(1, 40, nullptr);
  const uint64_t device = store.stats().device_bytes_written;
  EXPECT_TRUE(store.Erase(1));
  EXPECT_FALSE(store.Erase(1));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_EQ(store.live_bytes(), 0u);
  EXPECT_EQ(store.stats().device_bytes_written, device);
  EXPECT_EQ(store.stats().page_writes, 1u);
}

TEST(SetStoreTest, OversizeObjectsAreRejected) {
  SetAssocStore store(OneSet(100));
  EXPECT_FALSE(store.Insert(1, 101, nullptr));
  EXPECT_EQ(store.stats().oversize_rejects, 1u);
  EXPECT_EQ(store.stats().page_writes, 0u);
  EXPECT_FALSE(store.Contains(1));
}

TEST(SetStoreTest, HashSpreadsIdsAcrossSets) {
  SetStoreConfig config;
  config.set_bytes = 1024;
  config.num_sets = 16;
  SetAssocStore store(config);
  std::vector<uint64_t> counts(config.num_sets, 0);
  for (uint64_t id = 0; id < 1600; ++id) {
    ++counts[store.SetOf(id)];
  }
  for (uint64_t c : counts) {
    EXPECT_GT(c, 40u);   // no starved set
    EXPECT_LT(c, 200u);  // no overloaded set
  }
  // Same id always maps to the same set (the hash is seeded, not stateful).
  EXPECT_EQ(store.SetOf(12345), store.SetOf(12345));
}

TEST(SetStoreTest, ByteConservation) {
  SetAssocStore store(OneSet(128));
  std::vector<uint64_t> evicted;
  for (uint64_t i = 0; i < 300; ++i) {
    store.Insert(i % 17, 10 + (i % 7) * 13, &evicted);
  }
  EXPECT_EQ(store.stats().device_bytes_written,
            store.stats().page_writes * store.set_bytes());
}

}  // namespace
}  // namespace s3fifo
