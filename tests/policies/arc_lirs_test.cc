// Behavioural tests for ARC and LIRS.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/policies/arc.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(const std::string& name, uint64_t cap,
                            const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache(name, config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(ArcTest, HitMovesToFrequencySide) {
  auto c = Make("arc", 4);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(1));  // 1 -> T2
  // New insertions displace recency-side objects first.
  c->Get(Get(3));
  c->Get(Get(4));
  c->Get(Get(5));
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(2));
}

TEST(ArcTest, GhostHitGrowsRecencyTarget) {
  CacheConfig config;
  config.capacity = 8;
  ArcCache arc(config);
  const double p0 = arc.target_t1();
  // Build frequency-side pressure so REPLACE demotes T1 tails into B1
  // (a pure miss stream would evict T1 outright, bypassing the ghost).
  arc.Get(Get(1));
  arc.Get(Get(2));
  arc.Get(Get(1));  // -> T2
  arc.Get(Get(2));  // -> T2
  for (uint64_t i = 3; i <= 10; ++i) {
    arc.Get(Get(i));  // fills T1 (capacity 8); REPLACE demotes tails into B1
  }
  arc.Get(Get(3));  // B1 ghost hit
  EXPECT_GT(arc.target_t1(), p0);
}

TEST(ArcTest, QuickerDemotionThanLruOnOneHitWonderHeavyTrace) {
  // ARC's adaptive recency queue sheds one-hit wonders early; LRU lets them
  // ride the whole queue (§6.1 compares exactly these two).
  ZipfWorkloadConfig zc;
  zc.num_objects = 1500;
  zc.num_requests = 50000;
  zc.alpha = 1.0;
  zc.new_object_fraction = 0.3;
  zc.seed = 17;
  Trace t = GenerateZipfTrace(zc);
  auto arc = Make("arc", 150);
  auto lru = Make("lru", 150);
  const double mr_arc = Simulate(t, *arc).MissRatio();
  const double mr_lru = Simulate(t, *lru).MissRatio();
  EXPECT_LT(mr_arc, mr_lru + 0.01);
}

TEST(ArcTest, DirectoryBounded) {
  // T1+T2+B1+B2 never exceeds 2c entries; exercised via churn.
  ZipfWorkloadConfig zc;
  zc.num_objects = 2000;
  zc.num_requests = 30000;
  zc.alpha = 0.8;
  zc.seed = 1;
  Trace t = GenerateZipfTrace(zc);
  auto c = Make("arc", 50);
  const SimResult r = Simulate(t, *c);
  EXPECT_LE(c->occupied(), 50u);
  EXPECT_GT(r.hits, 0u);
}

TEST(LirsTest, ReusedBlocksBecomeLir) {
  auto c = Make("lirs", 10);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(1));  // low inter-reference recency
  // A burst of one-hit blocks must not displace block 1.
  for (uint64_t i = 10; i < 30; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(1));
}

TEST(LirsTest, ScanResistant) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 80;
  zc.num_requests = 5000;
  zc.alpha = 1.2;
  zc.seed = 7;
  Trace hot = GenerateZipfTrace(zc);
  auto c = Make("lirs", 100);
  Simulate(hot, *c);
  Trace scan = GenerateSequentialScan(3000);
  for (const Request& r : scan.requests()) {
    Request shifted = r;
    shifted.id += 1 << 20;
    c->Get(shifted);
  }
  const SimResult after = Simulate(hot, *c);
  EXPECT_GT(static_cast<double>(after.hits) / after.requests, 0.85);
}

TEST(LirsTest, NonResidentHistoryGivesFastPromotion) {
  auto c = Make("lirs", 10, "hir_ratio=0.2");
  // Fill the cache so evictions occur.
  for (uint64_t i = 0; i < 10; ++i) {
    c->Get(Get(i));
  }
  // Cause id 100 to enter and get evicted (leaving non-resident history),
  // then return: it should be admitted as LIR.
  c->Get(Get(100));
  for (uint64_t i = 20; i < 24; ++i) {
    c->Get(Get(i));  // push 100 out of the small HIR queue
  }
  EXPECT_FALSE(c->Contains(100));
  c->Get(Get(100));  // non-resident HIR hit -> LIR
  EXPECT_TRUE(c->Contains(100));
  // Now it survives HIR churn.
  for (uint64_t i = 30; i < 40; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(100));
}

TEST(LirsTest, NonResidentBoundHolds) {
  auto c = Make("lirs", 20, "nonresident_ratio=1.0");
  Trace scan = GenerateSequentialScan(10000);
  const SimResult r = Simulate(scan, *c);
  EXPECT_EQ(r.hits, 0u);
  EXPECT_LE(c->occupied(), 20u);
}

TEST(LirsTest, QuickDemotionOfColdBlocks) {
  // LIRS keeps new unreused blocks only in the small HIR queue — they are
  // evicted after ~1% of the cache worth of insertions, not after a full
  // pass like LRU (§5.2 "the secret source of LIRS's high efficiency").
  auto c = Make("lirs", 100);
  std::vector<uint64_t> ages;
  c->set_eviction_listener(
      [&](const EvictionEvent& ev) { ages.push_back(ev.evict_time - ev.insert_time); });
  Trace scan = GenerateSequentialScan(5000);
  Simulate(scan, *c);
  ASSERT_FALSE(ages.empty());
  double mean = 0;
  for (uint64_t a : ages) {
    mean += static_cast<double>(a);
  }
  mean /= static_cast<double>(ages.size());
  EXPECT_LT(mean, 20.0);  // far below the LRU eviction age of ~100
}

}  // namespace
}  // namespace s3fifo
