// Belady / OPT tests, including the optimality property against every
// online policy.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(uint64_t cap, const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache("belady", config);
}

Trace Annotated(std::vector<uint64_t> ids) {
  std::vector<Request> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    Request r;
    r.id = ids[i];
    r.time = i;
    reqs.push_back(r);
  }
  Trace t(std::move(reqs));
  AnnotateNextAccess(t);
  return t;
}

TEST(BeladyTest, RequiresAnnotation) {
  Trace t = Annotated({1, 2, 1});
  Trace raw(std::vector<Request>(t.requests()));  // un-annotated copy
  auto c = Make(2);
  EXPECT_THROW(Simulate(raw, *c), std::invalid_argument);
}

TEST(BeladyTest, EvictsFarthestFuture) {
  // Cache of 2. Sequence: 1 2 3 1 2. At the miss on 3, object 1 is reused
  // at t=3 and 2 at t=4 -> evict 2 (farthest... no: farthest is 2).
  Trace t = Annotated({1, 2, 3, 1, 2});
  auto c = Make(2);
  const SimResult r = Simulate(t, *c);
  // OPT: misses on 1,2,3; then 1 hits (kept), 2 misses. 4 misses, 1 hit.
  EXPECT_EQ(r.hits, 1u);
}

TEST(BeladyTest, ClassicBeladyExample) {
  // Page string 2 3 2 1 5 2 4 5 3 2 5 2 with 3 frames: OPT faults on
  // 2,3,1,5,4,2 — six misses (hand-verified).
  Trace t = Annotated({2, 3, 2, 1, 5, 2, 4, 5, 3, 2, 5, 2});
  auto c = Make(3);
  const SimResult r = Simulate(t, *c);
  EXPECT_EQ(r.misses, 6u);
}

TEST(BeladyTest, BypassNeverParamSkipsDeadObjects) {
  Trace t = Annotated({1, 2, 3, 1});  // 2 and 3 never reused
  auto c = Make(2, "bypass_never=1");
  Simulate(t, *c);
  EXPECT_FALSE(c->Contains(2));
  EXPECT_FALSE(c->Contains(3));
  EXPECT_TRUE(c->Contains(1));
}

class BeladyOptimalityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BeladyOptimalityTest, NoOnlinePolicyBeatsOpt) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 400;
  zc.num_requests = 20000;
  zc.alpha = 0.9;
  zc.scan_fraction = 0.001;
  zc.scan_length = 50;
  zc.seed = 21;
  Trace t = GenerateZipfTrace(zc);
  AnnotateNextAccess(t);

  CacheConfig config;
  config.capacity = 64;
  auto opt = CreateCache("belady", config);
  auto online = CreateCache(GetParam(), config);
  const double mr_opt = Simulate(t, *opt).MissRatio();
  const double mr_online = Simulate(t, *online).MissRatio();
  // Belady is optimal for uniform sizes; allow a hair of slack for the
  // tie-breaking of equal next-access distances.
  EXPECT_LE(mr_opt, mr_online + 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(VsOnline, BeladyOptimalityTest,
                         ::testing::Values("fifo", "lru", "clock", "sieve", "slru", "2q", "arc",
                                           "lirs", "tinylfu", "lfu", "lecar", "lhd", "s3fifo",
                                           "s3fifo-d", "random"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace s3fifo
