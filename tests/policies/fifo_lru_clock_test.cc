// Behavioural tests pinning down FIFO, LRU, and CLOCK semantics.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(const std::string& name, uint64_t cap,
                            const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache(name, config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(FifoTest, EvictsInInsertionOrder) {
  auto c = Make("fifo", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(4));  // evicts 1
  EXPECT_FALSE(c->Contains(1));
  EXPECT_TRUE(c->Contains(2));
  EXPECT_TRUE(c->Contains(3));
  EXPECT_TRUE(c->Contains(4));
}

TEST(FifoTest, HitsDoNotChangeOrder) {
  auto c = Make("fifo", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(1));  // hit; 1 remains oldest
  c->Get(Get(4));  // evicts 1 despite the hit
  EXPECT_FALSE(c->Contains(1));
}

TEST(LruTest, HitsPromote) {
  auto c = Make("lru", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(1));  // 1 becomes MRU
  c->Get(Get(4));  // evicts 2 (now LRU)
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(2));
}

TEST(LruTest, EvictionEventCountsHits) {
  auto c = Make("lru", 2);
  std::vector<EvictionEvent> events;
  c->set_eviction_listener([&](const EvictionEvent& ev) { events.push_back(ev); });
  c->Get(Get(1));
  c->Get(Get(1));
  c->Get(Get(1));  // two hits
  c->Get(Get(2));
  c->Get(Get(3));  // evicts 1
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[0].access_count, 2u);
}

TEST(ClockTest, SecondChanceOnReferencedObject) {
  auto c = Make("clock", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(1));  // sets 1's ref bit
  c->Get(Get(4));  // 1 gets a second chance; 2 is evicted
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(2));
}

TEST(ClockTest, UnreferencedEvictedInFifoOrder) {
  auto c = Make("clock", 2);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  EXPECT_FALSE(c->Contains(1));
}

TEST(ClockTest, MultiBitCounterSurvivesMultipleSweeps) {
  auto c = Make("clock", 3, "bits=2");  // counter up to 3
  c->Get(Get(1));
  c->Get(Get(1));
  c->Get(Get(1));
  c->Get(Get(1));  // ref = 3
  c->Get(Get(2));
  c->Get(Get(3));
  // Three insertions force three sweeps past object 1.
  c->Get(Get(4));
  c->Get(Get(5));
  EXPECT_TRUE(c->Contains(1));  // 2 decrements so far, still referenced
}

TEST(ClockTest, EqualsFifoWithoutReuse) {
  Trace scan = GenerateSequentialScan(2000);
  auto fifo = Make("fifo", 100);
  auto clock = Make("clock", 100);
  const SimResult rf = Simulate(scan, *fifo);
  const SimResult rc = Simulate(scan, *clock);
  EXPECT_EQ(rf.misses, rc.misses);
}

TEST(LruTest, LoopThrashesLruButNotFifoWorse) {
  // The classic result: a loop slightly larger than the cache gives LRU a
  // 100% miss ratio; FIFO does no better — both thrash.
  Trace loop = GenerateLoop(110, 10000);
  auto lru = Make("lru", 100);
  const SimResult r = Simulate(loop, *lru);
  EXPECT_EQ(r.hits, 0u);
}

TEST(LruTest, ByteModeSizeUpdateEvicts) {
  CacheConfig config;
  config.capacity = 1000;
  config.count_based = false;
  auto c = CreateCache("lru", config);
  Request a;
  a.id = 1;
  a.size = 400;
  c->Get(a);
  Request b;
  b.id = 2;
  b.size = 400;
  c->Get(b);
  // Grow object 1 to 900 bytes via a set: object 2 must be evicted.
  Request grow;
  grow.id = 1;
  grow.size = 900;
  grow.op = OpType::kSet;
  EXPECT_TRUE(c->Get(grow));
  EXPECT_LE(c->occupied(), 1000u);
  EXPECT_FALSE(c->Contains(2));
  EXPECT_TRUE(c->Contains(1));
}

}  // namespace
}  // namespace s3fifo
