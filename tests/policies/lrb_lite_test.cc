// LRB-lite: the learned time-to-next-access baseline (§5.2.3 comparison).
#include "src/policies/lrb_lite.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace SkewedTrace(uint64_t seed, uint64_t requests = 60000) {
  ZipfWorkloadConfig c;
  c.num_objects = 1000;
  c.num_requests = requests;
  c.alpha = 1.1;
  c.burst_fraction = 0.2;
  c.seed = seed;
  return GenerateZipfTrace(c);
}

TEST(LrbLiteTest, RegisteredInFactory) {
  CacheConfig config;
  config.capacity = 100;
  auto cache = CreateCache("lrb-lite", config);
  EXPECT_EQ(cache->Name(), "lrb-lite");
}

TEST(LrbLiteTest, CapacityRespected) {
  CacheConfig config;
  config.capacity = 64;
  LrbLiteCache cache(config);
  Trace t = SkewedTrace(1);
  for (const Request& r : t.requests()) {
    cache.Get(r);
    ASSERT_LE(cache.occupied(), 64u);
  }
}

TEST(LrbLiteTest, LearnsToBeatRandomOnSkewedTrace) {
  // After online training the model must separate hot (short predicted
  // distance) from cold objects, beating random eviction.
  Trace t = SkewedTrace(2, 80000);
  CacheConfig config;
  config.capacity = 80;
  auto lrb = CreateCache("lrb-lite", config);
  auto random = CreateCache("random", config);
  SimOptions options;
  options.warmup_requests = 20000;  // let the model converge first
  const double mr_lrb = Simulate(t, *lrb, options).MissRatio();
  const double mr_rand = Simulate(t, *random, options).MissRatio();
  EXPECT_LT(mr_lrb, mr_rand);
}

TEST(LrbLiteTest, ComparableToS3FifoOnWikimediaLikeTrace) {
  // §5.2.3 compares S3-FIFO with LRB on the Wikimedia traces and finds
  // "similar efficiency". Our linear lite model trails the full GBM
  // slightly; require the absolute miss-ratio gap to stay small and
  // LRB-lite to be at least LRU-level.
  Trace t = GenerateDatasetTrace(DatasetByName("wiki"), 0, 0.5);
  CacheConfig config;
  config.capacity = std::max<uint64_t>(t.Stats().num_objects / 10, 100);
  auto lrb = CreateCache("lrb-lite", config);
  auto s3 = CreateCache("s3fifo", config);
  auto lru = CreateCache("lru", config);
  const double mr_lrb = Simulate(t, *lrb).MissRatio();
  const double mr_s3 = Simulate(t, *s3).MissRatio();
  const double mr_lru = Simulate(t, *lru).MissRatio();
  EXPECT_NEAR(mr_lrb, mr_s3, 0.03);
  EXPECT_LE(mr_lrb, mr_lru + 0.005);
}

TEST(LrbLiteTest, DeterministicForSeed) {
  Trace t = SkewedTrace(5);
  CacheConfig config;
  config.capacity = 100;
  auto a = CreateCache("lrb-lite", config);
  auto b = CreateCache("lrb-lite", config);
  EXPECT_EQ(Simulate(t, *a).hits, Simulate(t, *b).hits);
}

TEST(LrbLiteTest, DeleteSupported) {
  CacheConfig config;
  config.capacity = 16;
  LrbLiteCache cache(config);
  Request r;
  r.id = 9;
  cache.Get(r);
  ASSERT_TRUE(cache.Contains(9));
  r.op = OpType::kDelete;
  cache.Get(r);
  EXPECT_FALSE(cache.Contains(9));
}

TEST(LrbLiteTest, ScanDoesNotCrashOrHit) {
  CacheConfig config;
  config.capacity = 50;
  LrbLiteCache cache(config);
  Trace scan = GenerateSequentialScan(5000);
  const SimResult r = Simulate(scan, cache);
  EXPECT_EQ(r.hits, 0u);
}

}  // namespace
}  // namespace s3fifo
