// Behavioural tests for LFU, LRU-K, B-LRU, LeCaR, CACHEUS, LHD, Hyperbolic,
// FIFO-Merge, and Random.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(const std::string& name, uint64_t cap,
                            const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache(name, config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

Trace SkewedTrace(uint64_t seed, uint64_t objects = 1000, uint64_t requests = 30000) {
  ZipfWorkloadConfig c;
  c.num_objects = objects;
  c.num_requests = requests;
  c.alpha = 1.0;
  c.seed = seed;
  return GenerateZipfTrace(c);
}

TEST(LfuTest, EvictsLeastFrequent) {
  auto c = Make("lfu", 3);
  c->Get(Get(1));
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(4));  // 3 has the lowest frequency
  EXPECT_FALSE(c->Contains(3));
  EXPECT_TRUE(c->Contains(1));
  EXPECT_TRUE(c->Contains(2));
}

TEST(LfuTest, TieBrokenByRecency) {
  auto c = Make("lfu", 2);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));  // 1 and 2 tie at freq 1; 1 accessed longer ago
  EXPECT_FALSE(c->Contains(1));
  EXPECT_TRUE(c->Contains(2));
}

TEST(LruKTest, KDistanceBeatsRecency) {
  // Object with two accesses has finite K-distance; one-touch objects are
  // evicted first regardless of recency.
  auto c = Make("lruk", 3, "k=2");
  c->Get(Get(1));
  c->Get(Get(1));  // 1 has 2 refs
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(4));  // evict among {2,3} (no K-th access), oldest first
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(2));
}

TEST(LruKTest, OneTouchPagesEvictedBeforeTwoTouchUnderChurn) {
  // Backward K-distance is infinite for pages with < K references: a churn
  // of one-touch pages can never displace K-referenced residents.
  auto c = Make("lruk", 4, "k=2");
  c->Get(Get(1));
  c->Get(Get(1));
  for (uint64_t i = 10; i < 40; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(1));
}

TEST(LruKTest, RetainedHistoryChangesDecisions) {
  // With retained reference history a returning object carries a finite
  // K-distance; without retention it restarts at infinity. The two
  // configurations must diverge on a churny workload.
  ZipfWorkloadConfig zc;
  zc.num_objects = 2000;
  zc.num_requests = 40000;
  zc.alpha = 0.8;
  zc.seed = 23;
  Trace t = GenerateZipfTrace(zc);
  auto with_history = Make("lruk", 100, "k=2,history_ratio=2.0");
  auto without_history = Make("lruk", 100, "k=2,history_ratio=0.0001");
  const SimResult a = Simulate(t, *with_history);
  const SimResult b = Simulate(t, *without_history);
  EXPECT_NE(a.hits, b.hits);
}

TEST(BLruTest, FirstTouchIsNotCached) {
  auto c = Make("blru", 10);
  c->Get(Get(1));
  EXPECT_FALSE(c->Contains(1));
  c->Get(Get(1));  // second touch admits
  EXPECT_TRUE(c->Contains(1));
}

TEST(BLruTest, RejectsOneHitWondersEntirely) {
  auto c = Make("blru", 50);
  Trace scan = GenerateSequentialScan(5000);
  uint64_t evictions = 0;
  c->set_eviction_listener([&](const EvictionEvent&) { ++evictions; });
  Simulate(scan, *c);
  // Essentially nothing admitted: only Bloom false positives (rate 0.001)
  // can slip through.
  EXPECT_LE(c->occupied(), 15u);
  EXPECT_LE(evictions, 15u);
}

TEST(BLruTest, SecondRequestIsAlwaysAMiss) {
  // The §5.2 critique: B-LRU turns every object's second request into a
  // miss; on a two-hit workload it gets zero hits.
  Trace two_hit = GenerateTwoHitPattern(2000, 10);
  auto blru = Make("blru", 100);
  const SimResult r = Simulate(two_hit, *blru);
  EXPECT_EQ(r.hits, 0u);
  // Plain LRU catches the second request easily at this reuse distance.
  auto lru = Make("lru", 100);
  EXPECT_GT(Simulate(two_hit, *lru).hits, 0u);
}

TEST(LeCarTest, WeightsRemainNormalised) {
  auto c = Make("lecar", 50);
  Trace t = SkewedTrace(3);
  Simulate(t, *c);
  // Re-run hot objects; just assert sane behaviour (weights internal).
  EXPECT_LE(c->occupied(), 50u);
}

TEST(LeCarTest, BeatsNothingButWorks) {
  Trace t = SkewedTrace(5);
  auto c = Make("lecar", 100);
  const SimResult r = Simulate(t, *c);
  EXPECT_GT(r.hits, r.requests / 4);  // sane hit rate on a skewed trace
}

TEST(CacheusTest, AdaptiveLearningRateRuns) {
  Trace t = SkewedTrace(7, 500, 40000);
  auto c = Make("cacheus", 64);
  const SimResult r = Simulate(t, *c);
  EXPECT_GT(r.hits, 0u);
  EXPECT_LE(c->occupied(), 64u);
}

TEST(LhdTest, PrefersHighHitDensityObjects) {
  // Hot objects re-accessed at short ages accumulate hit events in young
  // age classes; cold objects age out. After warmup LHD must clearly beat
  // random eviction on a skewed trace.
  Trace t = SkewedTrace(9, 500, 50000);
  auto lhd = Make("lhd", 50);
  auto random = Make("random", 50);
  const double mr_lhd = Simulate(t, *lhd).MissRatio();
  const double mr_rand = Simulate(t, *random).MissRatio();
  EXPECT_LT(mr_lhd, mr_rand + 0.02);
}

TEST(HyperbolicTest, FrequencyPerAgePriority) {
  Trace t = SkewedTrace(11, 500, 50000);
  auto hyp = Make("hyperbolic", 50);
  auto random = Make("random", 50);
  EXPECT_LT(Simulate(t, *hyp).MissRatio(), Simulate(t, *random).MissRatio() + 0.02);
}

TEST(FifoMergeTest, RetainsFrequentObjectsAcrossMerges) {
  auto c = Make("fifo-merge", 64, "segment_objects=8,merge_factor=4");
  // Make object 1 hot.
  c->Get(Get(1));
  for (int round = 0; round < 20; ++round) {
    c->Get(Get(1));
    for (uint64_t i = 0; i < 10; ++i) {
      c->Get(Get(1000 + static_cast<uint64_t>(round) * 10 + i));
    }
  }
  EXPECT_TRUE(c->Contains(1));
  EXPECT_LE(c->occupied(), 64u);
}

TEST(FifoMergeTest, DeleteTombstonesThenReinsert) {
  auto c = Make("fifo-merge", 32, "segment_objects=8");
  c->Get(Get(5));
  Request del;
  del.id = 5;
  del.op = OpType::kDelete;
  c->Get(del);
  EXPECT_FALSE(c->Contains(5));
  c->Get(Get(5));
  EXPECT_TRUE(c->Contains(5));
}

TEST(RandomTest, EvictsSomethingWhenFull) {
  auto c = Make("random", 10);
  for (uint64_t i = 0; i < 100; ++i) {
    c->Get(Get(i));
    ASSERT_LE(c->occupied(), 10u);
  }
  // Exactly 10 residents remain.
  int resident = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    if (c->Contains(i)) {
      ++resident;
    }
  }
  EXPECT_EQ(resident, 10);
}

}  // namespace
}  // namespace s3fifo
