// Second-round behavioural edges: adaptation directions, admission filters,
// instrumentation details, and byte-mode paths that the first-round suites
// do not pin down.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/policies/arc.h"
#include "src/policies/lecar.h"
#include "src/policies/s3fifo.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(ArcEdgeTest, B2HitShrinksRecencyTarget) {
  CacheConfig config;
  config.capacity = 8;
  ArcCache arc(config);
  // Grow p via a B1 hit first (as in arc_lirs_test), then force a T2
  // demotion into B2 and re-request it: p must shrink back.
  arc.Get(Get(1));
  arc.Get(Get(2));
  arc.Get(Get(1));
  arc.Get(Get(2));
  for (uint64_t i = 3; i <= 10; ++i) {
    arc.Get(Get(i));
  }
  arc.Get(Get(3));  // B1 hit: p grows
  const double p_after_b1 = arc.target_t1();
  ASSERT_GT(p_after_b1, 0.0);
  // Flood with recency traffic so T2 tails demote into B2 (p now favours
  // T1, so REPLACE picks T2 victims once T1 <= p).
  for (uint64_t i = 100; i < 140; ++i) {
    arc.Get(Get(i));
  }
  // Request one of the original frequent objects; if it sits in B2 the hit
  // shrinks p. Find one that is a B2 ghost by probing misses.
  const double p_before = arc.target_t1();
  arc.Get(Get(1));
  arc.Get(Get(2));
  EXPECT_LE(arc.target_t1(), p_before);
}

TEST(LeCarEdgeTest, GhostHitShiftsWeightAwayFromGuiltyExpert) {
  CacheConfig config;
  config.capacity = 16;
  config.seed = 5;
  LeCarCache cache(config);
  const double w0 = cache.weight_lru();
  EXPECT_DOUBLE_EQ(w0, 0.5);
  // Churn to generate evictions from both experts, then re-request ids to
  // trigger ghost hits; weights must move away from 0.5 eventually while
  // remaining a distribution.
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    cache.Get(Get(rng.NextBounded(200)));
    const double w = cache.weight_lru();
    ASSERT_GE(w, 0.0);
    ASSERT_LE(w, 1.0);
  }
  EXPECT_NE(cache.weight_lru(), 0.5);
}

TEST(S3FifoEdgeTest, ByteModeSmallAndMainShareScalesWithBytes) {
  CacheConfig config;
  config.capacity = 100000;  // bytes
  config.count_based = false;
  S3FifoCache cache(config);
  EXPECT_EQ(cache.small_target(), 10000u);  // 10% of the byte capacity
  Rng rng(2);
  for (int i = 0; i < 30000; ++i) {
    Request r;
    r.id = rng.NextBounded(500);
    r.size = 500 + static_cast<uint32_t>(rng.NextBounded(3000));
    cache.Get(r);
    ASSERT_LE(cache.occupied(), 100000u);
    ASSERT_EQ(cache.small_occupied() + cache.main_occupied(), cache.occupied());
  }
}

TEST(S3FifoEdgeTest, GhostDoesNotRememberMainEvictions) {
  // Only S evictions enter G (Fig. 5): an object evicted from M must be a
  // plain miss (re-inserted into S) on return.
  CacheConfig config;
  config.capacity = 20;
  config.params = "small_ratio=0.5,move_to_main_threshold=1";
  S3FifoCache cache(config);
  cache.Get(Get(1));
  cache.Get(Get(1));  // freq 1 -> moves to M at S eviction
  for (uint64_t i = 100; i < 160; ++i) {
    cache.Get(Get(i));  // churn: promotes twice-touched objects into M,
    cache.Get(Get(i));  // pushing 1 (freq 0 after its move) out of M
  }
  ASSERT_FALSE(cache.Contains(1));
  const uint64_t main_evictions = cache.stats().main_evictions;
  ASSERT_GT(main_evictions, 0u);
  EXPECT_FALSE(cache.GhostContains(1));
  cache.Get(Get(1));
  EXPECT_GT(cache.small_occupied(), 0u);  // came back through S, not M
}

TEST(S3FifoEdgeTest, SetOpCountsAsAccessForPromotion) {
  CacheConfig config;
  config.capacity = 100;
  S3FifoCache cache(config);
  Request w;
  w.id = 7;
  w.op = OpType::kSet;
  cache.Get(w);  // insert via set
  cache.Get(w);  // set hit: increments freq like a get
  cache.Get(w);
  for (uint64_t i = 1000; i < 1110; ++i) {
    cache.Get(Get(i));
  }
  EXPECT_TRUE(cache.Contains(7));  // promoted to M on S eviction
}

TEST(TinyLfuEdgeTest, DoorkeeperAbsorbsFirstTouch) {
  // A single access registers in the doorkeeper only; the duel estimate for
  // a once-seen candidate ties with a once-seen victim, so the candidate is
  // rejected (ties favour the incumbent).
  CacheConfig config;
  config.capacity = 100;
  config.params = "window_ratio=0.02";
  auto c = CreateCache("tinylfu", config);
  // Fill main with once-seen objects.
  for (uint64_t i = 0; i < 200; ++i) {
    c->Get(Get(i));
  }
  const uint64_t resident_before = c->occupied();
  // A new one-touch object cannot displace a main resident.
  c->Get(Get(10001));
  c->Get(Get(10002));
  c->Get(Get(10003));
  EXPECT_EQ(c->occupied(), resident_before);
  EXPECT_FALSE(c->Contains(10001));
}

TEST(BeladyEdgeTest, TieOnNeverAccessedPrefersEviction) {
  // Two residents never reused: inserting a third (reused) object must evict
  // one of them, not the useful one.
  CacheConfig config;
  config.capacity = 2;
  auto c = CreateCache("belady", config);
  Request a = Get(1);
  a.next_access = kNeverAccessed;
  Request b = Get(2);
  b.next_access = kNeverAccessed;
  Request u = Get(3);
  u.next_access = 10;
  c->Get(a);
  c->Get(b);
  c->Get(u);
  EXPECT_TRUE(c->Contains(3));
}

TEST(SieveEdgeTest, HandWrapsAroundAfterFullPass) {
  CacheConfig config;
  config.capacity = 3;
  auto c = CreateCache("sieve", config);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  // Visit everything: eviction must still make progress (two-pass clear).
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(4));
  EXPECT_EQ(c->occupied(), 3u);
  int resident = 0;
  for (uint64_t id : {1, 2, 3, 4}) {
    resident += c->Contains(id) ? 1 : 0;
  }
  EXPECT_EQ(resident, 3);
}

TEST(ClockEdgeTest, DeleteWhileSweeping) {
  CacheConfig config;
  config.capacity = 4;
  auto c = CreateCache("clock", config);
  for (uint64_t i = 1; i <= 4; ++i) {
    c->Get(Get(i));
    c->Get(Get(i));  // all referenced
  }
  Request del;
  del.id = 2;
  del.op = OpType::kDelete;
  c->Get(del);
  c->Get(Get(9));  // sweep over remaining referenced entries
  EXPECT_LE(c->occupied(), 4u);
  EXPECT_TRUE(c->Contains(9));
}

TEST(TwoQEdgeTest, GhostCapacityBoundsMemory) {
  CacheConfig config;
  config.capacity = 10;
  config.params = "kout_ratio=0.5";
  auto c = CreateCache("2q", config);
  // Long scan: A1out must forget old ids (bounded at 5 entries).
  for (uint64_t i = 0; i < 1000; ++i) {
    c->Get(Get(i));
  }
  // An id far in the past is no longer remembered: re-request lands in A1in
  // (and the occupancy invariant holds).
  c->Get(Get(1));
  EXPECT_LE(c->occupied(), 10u);
}

TEST(FifoMergeEdgeTest, SegmentParamControlsGranularity) {
  CacheConfig config;
  config.capacity = 64;
  config.params = "segment_objects=4,merge_factor=2";
  auto c = CreateCache("fifo-merge", config);
  ZipfWorkloadConfig zc;
  zc.num_objects = 500;
  zc.num_requests = 20000;
  zc.alpha = 1.0;
  zc.seed = 6;
  Trace t = GenerateZipfTrace(zc);
  const SimResult r = Simulate(t, *c);
  EXPECT_GT(r.hits, 0u);
  EXPECT_LE(c->occupied(), 64u);
}

TEST(LhdEdgeTest, ReconfigureKeepsWorking) {
  CacheConfig config;
  config.capacity = 50;
  config.params = "reconfigure_factor=1,age_classes=16";  // frequent reconfigs
  auto c = CreateCache("lhd", config);
  ZipfWorkloadConfig zc;
  zc.num_objects = 400;
  zc.num_requests = 30000;
  zc.alpha = 1.0;
  zc.seed = 7;
  Trace t = GenerateZipfTrace(zc);
  const SimResult r = Simulate(t, *c);
  EXPECT_GT(r.hits, 0u);
  EXPECT_LE(c->occupied(), 50u);
}

// --- Factory-wide edge sweep: every policy, the inputs that break caches ---

Request Sized(uint64_t id, uint32_t size, OpType op = OpType::kGet) {
  Request r;
  r.id = id;
  r.size = size;
  r.op = op;
  return r;
}

TEST(AllPoliciesEdgeTest, ObjectLargerThanCapacityNeverOverfills) {
  for (const std::string& name : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 1000;
    config.count_based = false;
    auto c = CreateCache(name, config);
    c->Get(Sized(1, 400));
    c->Get(Sized(2, 400));
    // Oversized requests, repeated and mixed with fitting ones.
    for (int round = 0; round < 3; ++round) {
      c->Get(Sized(100 + round, 1001));
      c->Get(Sized(200 + round, 5000, OpType::kSet));
      c->Get(Sized(3, 100));
      ASSERT_LE(c->occupied(), 1000u) << name;
    }
    EXPECT_FALSE(c->Contains(100)) << name;  // cannot possibly be resident
  }
}

TEST(AllPoliciesEdgeTest, ZeroByteObjectsDoNotCorruptAccounting) {
  for (const std::string& name : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 100;
    config.count_based = false;
    auto c = CreateCache(name, config);
    for (uint64_t i = 0; i < 50; ++i) {
      c->Get(Sized(i, i % 3 == 0 ? 0 : 10));
      ASSERT_LE(c->occupied(), 100u) << name;
    }
    // Re-request a zero-byte object and delete it; occupancy stays sane.
    c->Get(Sized(0, 0));
    c->Get(Sized(0, 0, OpType::kDelete));
    EXPECT_FALSE(c->Contains(0)) << name;
    EXPECT_LE(c->occupied(), 100u) << name;
  }
}

TEST(AllPoliciesEdgeTest, ReinsertWithLargerSizeReclaimsSpace) {
  for (const std::string& name : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 100;
    config.count_based = false;
    auto c = CreateCache(name, config);
    c->Get(Sized(1, 10, OpType::kSet));
    c->Get(Sized(2, 10, OpType::kSet));
    c->Get(Sized(3, 10, OpType::kSet));
    // Same key grows: 10 -> 90 bytes. The cache must evict to make room
    // (or drop the object), never exceed capacity.
    c->Get(Sized(1, 90, OpType::kSet));
    ASSERT_LE(c->occupied(), 100u) << name;
    // And grows beyond the whole cache: must not wedge the accounting.
    c->Get(Sized(2, 150, OpType::kSet));
    ASSERT_LE(c->occupied(), 100u) << name;
    c->Get(Sized(4, 20, OpType::kSet));
    ASSERT_LE(c->occupied(), 100u) << name;
  }
}

TEST(AllPoliciesEdgeTest, GetAfterDeleteIsAMiss) {
  for (const std::string& name : AllCacheNames()) {
    CacheConfig config;
    config.capacity = 8;
    auto c = CreateCache(name, config);
    c->Get(Get(5));
    c->Get(Get(5));  // warm it so recency/frequency state exists
    c->Get(Sized(5, 1, OpType::kDelete));
    EXPECT_FALSE(c->Contains(5)) << name;
    EXPECT_FALSE(c->Get(Get(5))) << name;  // must be a fresh miss
    // Deleting a never-seen id is a no-op.
    c->Get(Sized(77, 1, OpType::kDelete));
    EXPECT_LE(c->occupied(), 8u) << name;
  }
}

}  // namespace
}  // namespace s3fifo
