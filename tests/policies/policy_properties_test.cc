// Property suite run against EVERY registered policy: capacity invariants,
// determinism, delete handling, presence consistency, and basic sanity of
// hit accounting — on count-based and byte-based configurations.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/next_access.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace MixedTrace(uint64_t seed) {
  ZipfWorkloadConfig c;
  c.num_objects = 500;
  c.num_requests = 20000;
  c.alpha = 0.9;
  c.write_fraction = 0.1;
  c.delete_fraction = 0.03;
  c.scan_fraction = 0.001;
  c.scan_length = 100;
  c.new_object_fraction = 0.02;
  c.seed = seed;
  Trace t = GenerateZipfTrace(c);
  AnnotateNextAccess(t);
  return t;
}

Trace SizedTrace(uint64_t seed) {
  ZipfWorkloadConfig c;
  c.num_objects = 400;
  c.num_requests = 15000;
  c.alpha = 1.0;
  c.size_sigma = 1.5;
  c.size_mean_bytes = 4096;
  c.size_min_bytes = 64;
  c.size_max_bytes = 1 << 16;
  c.write_fraction = 0.05;
  c.delete_fraction = 0.02;
  c.seed = seed;
  Trace t = GenerateZipfTrace(c);
  AnnotateNextAccess(t);
  return t;
}

class PolicyPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Cache> Make(uint64_t capacity, bool count_based = true,
                              const std::string& params = "") {
    CacheConfig config;
    config.capacity = capacity;
    config.count_based = count_based;
    config.params = params;
    config.seed = 42;
    return CreateCache(GetParam(), config);
  }
};

TEST_P(PolicyPropertyTest, OccupancyNeverExceedsCapacityCountMode) {
  Trace t = MixedTrace(1);
  auto cache = Make(50);
  for (const Request& r : t.requests()) {
    cache->Get(r);
    ASSERT_LE(cache->occupied(), cache->capacity());
  }
}

TEST_P(PolicyPropertyTest, OccupancyNeverExceedsCapacityByteMode) {
  Trace t = SizedTrace(2);
  auto cache = Make(256 * 1024, /*count_based=*/false);
  for (const Request& r : t.requests()) {
    cache->Get(r);
    ASSERT_LE(cache->occupied(), cache->capacity());
  }
}

TEST_P(PolicyPropertyTest, DeterministicAcrossRuns) {
  Trace t = MixedTrace(3);
  auto a = Make(64);
  auto b = Make(64);
  const SimResult ra = Simulate(t, *a);
  const SimResult rb = Simulate(t, *b);
  EXPECT_EQ(ra.hits, rb.hits);
  EXPECT_EQ(ra.misses, rb.misses);
}

TEST_P(PolicyPropertyTest, MissRatioIsInUnitInterval) {
  Trace t = MixedTrace(4);
  auto cache = Make(100);
  const SimResult r = Simulate(t, *cache);
  EXPECT_GE(r.MissRatio(), 0.0);
  EXPECT_LE(r.MissRatio(), 1.0);
  EXPECT_EQ(r.hits + r.misses, r.requests);
}

TEST_P(PolicyPropertyTest, ColdMissesAtLeastUniqueObjects) {
  Trace t = MixedTrace(5);
  auto cache = Make(100);
  const SimResult r = Simulate(t, *cache);
  EXPECT_GE(r.misses, t.Stats().num_objects);
}

TEST_P(PolicyPropertyTest, GetAgreesWithContains) {
  Trace t = MixedTrace(6);
  auto cache = Make(64);
  for (const Request& r : t.requests()) {
    const bool resident = cache->Contains(r.id);
    const bool hit = cache->Get(r);
    if (r.op == OpType::kDelete) {
      ASSERT_FALSE(hit);
      ASSERT_FALSE(cache->Contains(r.id));
    } else {
      ASSERT_EQ(hit, resident) << "Get() and Contains() disagree";
    }
  }
}

TEST_P(PolicyPropertyTest, DeleteRemovesResidency) {
  auto cache = Make(16);
  Request get;
  get.id = 99;
  get.next_access = 3;
  cache->Get(get);
  if (cache->Contains(99)) {  // admission policies may not cache first touch
    Request del;
    del.id = 99;
    del.op = OpType::kDelete;
    cache->Get(del);
    EXPECT_FALSE(cache->Contains(99));
  }
}

TEST_P(PolicyPropertyTest, DeleteOfAbsentIdIsSafe) {
  auto cache = Make(16);
  Request del;
  del.id = 12345;
  del.op = OpType::kDelete;
  EXPECT_FALSE(cache->Get(del));
  EXPECT_LE(cache->occupied(), cache->capacity());
}

TEST_P(PolicyPropertyTest, RepeatedRequestEventuallyHits) {
  auto cache = Make(32);
  Request r;
  r.id = 7;
  r.next_access = 1;  // keep Belady interested
  bool hit = false;
  for (int i = 0; i < 4 && !hit; ++i) {
    hit = cache->Get(r);
  }
  // Every policy (including Bloom-filter admission, which needs two touches)
  // must serve a hot object from cache within a few back-to-back requests.
  EXPECT_TRUE(hit);
}

TEST_P(PolicyPropertyTest, PureScanYieldsNoHits) {
  Trace t = GenerateSequentialScan(5000);
  AnnotateNextAccess(t);
  auto cache = Make(100);
  const SimResult r = Simulate(t, *cache);
  EXPECT_EQ(r.hits, 0u);
}

TEST_P(PolicyPropertyTest, CapacityOneDoesNotCrash) {
  Trace t = MixedTrace(7);
  auto cache = Make(1);
  const SimResult r = Simulate(t, *cache);
  EXPECT_LE(cache->occupied(), 1u);
  EXPECT_GE(r.misses, 1u);
}

TEST_P(PolicyPropertyTest, TinyCapacityByteModeWithHugeObjects) {
  // Objects larger than the whole cache must be bypassed, not crash.
  auto cache = Make(1000, /*count_based=*/false);
  Request r;
  r.id = 1;
  r.size = 5000;
  r.next_access = 2;
  EXPECT_FALSE(cache->Get(r));
  EXPECT_FALSE(cache->Get(r));  // still a miss: never admitted
  EXPECT_EQ(cache->occupied(), 0u);
}

TEST_P(PolicyPropertyTest, EvictionsNeverExceedAdmissions) {
  Trace t = MixedTrace(8);
  auto cache = Make(40);
  uint64_t evictions = 0;
  cache->set_eviction_listener([&](const EvictionEvent&) { ++evictions; });
  const SimResult r = Simulate(t, *cache);
  EXPECT_LE(evictions, r.misses + t.Stats().num_deletes);
}

TEST_P(PolicyPropertyTest, EvictionEventsCarrySaneTimes) {
  Trace t = MixedTrace(9);
  auto cache = Make(40);
  cache->set_eviction_listener([&](const EvictionEvent& ev) {
    ASSERT_LE(ev.insert_time, ev.evict_time);
    ASSERT_LE(ev.last_access_time, ev.evict_time);
    ASSERT_LE(ev.insert_time, ev.last_access_time);
  });
  Simulate(t, *cache);
}

TEST_P(PolicyPropertyTest, HotWorkingSetFitsEntirely) {
  // A working set smaller than the cache must converge to ~100% hits.
  Trace warm = GenerateLoop(20, 5000);
  AnnotateNextAccess(warm);
  auto cache = Make(64);
  SimOptions options;
  options.warmup_requests = 1000;
  const SimResult r = Simulate(warm, *cache, options);
  EXPECT_GT(static_cast<double>(r.hits) / r.requests, 0.95) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::ValuesIn(AllCacheNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace s3fifo
