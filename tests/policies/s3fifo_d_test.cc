// S3-FIFO-D (§6.2.2): adaptive queue sizing.
#include "src/policies/s3fifo_d.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// Two-hit pattern interleaved with a persistent hot set, preceded by a
// warmup that fills M so S sits pinned at its target (see s3fifo_test.cc for
// the rationale). Designed for a cache of 200 objects.
Trace AdversarialMix(uint64_t num_objects, uint64_t lag) {
  constexpr uint64_t kHotSet = 60;
  constexpr uint64_t kWarmObjects = 400;
  std::vector<Request> out;
  for (uint64_t w = 0; w < kWarmObjects; ++w) {
    for (int rep = 0; rep < 3; ++rep) {
      Request r;
      r.id = (1ULL << 51) + w;
      r.time = out.size();
      out.push_back(r);
    }
  }
  Trace twohit = GenerateTwoHitPattern(num_objects, lag);
  uint64_t hot = 0;
  for (size_t i = 0; i < twohit.size(); ++i) {
    out.push_back(twohit[i]);
    Request r;
    r.id = (1ULL << 50) + (hot++ % kHotSet);
    r.time = out.size();
    out.push_back(r);
  }
  return Trace(std::move(out), "adversarial_mix");
}

TEST(S3FifoDTest, BehavesLikeS3FifoWhenBalanced) {
  // On a friendly skewed workload the adaptive variant should stay close to
  // static S3-FIFO (§6.2.2: "S3-FIFO is better than S3-FIFO-D on most
  // traces" — i.e. they are close, adaptation rarely helps).
  ZipfWorkloadConfig zc;
  zc.num_objects = 1500;
  zc.num_requests = 50000;
  zc.alpha = 1.0;
  zc.seed = 1;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 150;
  auto s3 = CreateCache("s3fifo", config);
  auto s3d = CreateCache("s3fifo-d", config);
  const double mr_static = Simulate(t, *s3).MissRatio();
  const double mr_dynamic = Simulate(t, *s3d).MissRatio();
  EXPECT_NEAR(mr_static, mr_dynamic, 0.05);
}

TEST(S3FifoDTest, GrowsSmallQueueOnAdversarialTwoHitPattern) {
  // Objects re-requested just outside S: the misses land in the S-eviction
  // adaptation ghost, so S should be enlarged (mitigating the §5.2
  // adversarial pattern). The adaptation ghosts are enlarged from the 5%
  // default so the reuse distance of the pattern falls inside their window.
  Trace t = AdversarialMix(20000, 30);
  CacheConfig config;
  config.capacity = 200;  // static S=20
  config.params = "adapt_ghost_ratio=0.5";
  S3FifoDCache s3d(config);
  const uint64_t initial_target = s3d.small_target();
  Simulate(t, s3d);
  EXPECT_GT(s3d.adaptations(), 0u);
  EXPECT_GT(s3d.small_target(), initial_target);
}

TEST(S3FifoDTest, AdaptationImprovesAdversarialMissRatio) {
  Trace t = AdversarialMix(20000, 30);
  CacheConfig config;
  config.capacity = 200;
  auto s3 = CreateCache("s3fifo", config);
  config.params = "adapt_ghost_ratio=0.5";
  auto s3d = CreateCache("s3fifo-d", config);
  const double mr_static = Simulate(t, *s3).MissRatio();
  const double mr_dynamic = Simulate(t, *s3d).MissRatio();
  EXPECT_LT(mr_dynamic, mr_static);
}

TEST(S3FifoDTest, TargetStaysWithinBounds) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 1000;
  zc.num_requests = 60000;
  zc.alpha = 0.7;
  zc.new_object_fraction = 0.2;
  zc.seed = 5;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 100;
  config.params = "adapt_ghost_ratio=0.5,adapt_min_hits=20";
  S3FifoDCache s3d(config);
  for (const Request& r : t.requests()) {
    s3d.Get(r);
    ASSERT_GE(s3d.small_target(), 1u);
    ASSERT_LT(s3d.small_target(), 100u);
    ASSERT_LE(s3d.occupied(), 100u);
  }
}

TEST(S3FifoDTest, CustomAdaptationParamsRespected) {
  CacheConfig config;
  config.capacity = 200;
  config.params = "adapt_ghost_ratio=0.4,adapt_min_hits=10,adapt_step_ratio=0.01";
  S3FifoDCache s3d(config);
  Trace t = AdversarialMix(20000, 50);
  Simulate(t, s3d);
  // Lower trigger + bigger steps => adapts much more aggressively.
  EXPECT_GT(s3d.adaptations(), 5u);
}

}  // namespace
}  // namespace s3fifo
