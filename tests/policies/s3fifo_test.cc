// S3-FIFO: unit tests for Algorithm 1's transitions, structural invariants,
// instrumentation, and a differential test against an independent
// transliteration of the algorithm.
#include "src/policies/s3fifo.h"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

S3FifoCache MakeS3(uint64_t cap, const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return S3FifoCache(config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(S3FifoTest, NewObjectsEnterSmallQueue) {
  auto c = MakeS3(100);
  c.Get(Get(1));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_EQ(c.small_occupied(), 1u);
  EXPECT_EQ(c.main_occupied(), 0u);
  EXPECT_EQ(c.stats().inserted_to_small, 1u);
}

TEST(S3FifoTest, OneHitWondersDemotedToGhost) {
  auto c = MakeS3(100);  // small target = 10
  // 11 one-touch objects: the first overflows S into the ghost.
  for (uint64_t i = 0; i < 95; ++i) {
    c.Get(Get(i));
  }
  // With only cold objects, evictions (once the cache fills) come from S.
  for (uint64_t i = 95; i < 120; ++i) {
    c.Get(Get(i));
  }
  EXPECT_GT(c.stats().demoted_to_ghost, 0u);
  EXPECT_EQ(c.stats().moved_to_main, 0u);
  EXPECT_TRUE(c.GhostContains(0));
}

TEST(S3FifoTest, GhostHitInsertsToMain) {
  auto c = MakeS3(100);
  for (uint64_t i = 0; i < 120; ++i) {
    c.Get(Get(i));  // pushes early ids through S into the ghost
  }
  ASSERT_TRUE(c.GhostContains(0));
  c.Get(Get(0));  // miss, but remembered: straight to M
  EXPECT_TRUE(c.Contains(0));
  EXPECT_GE(c.stats().ghost_hit_inserts, 1u);
  EXPECT_FALSE(c.GhostContains(0));  // consumed
  EXPECT_GE(c.main_occupied(), 1u);
}

TEST(S3FifoTest, DefaultThresholdFollowsAlgorithmOne) {
  // Algorithm 1 line 18: move to M only when freq > 1 (>= 2 hits).
  auto c = MakeS3(100);
  c.Get(Get(500));
  c.Get(Get(500));  // one hit: freq = 1
  for (uint64_t i = 0; i < 110; ++i) {
    c.Get(Get(1000 + i));  // flush S
  }
  // freq 1 < threshold 2: 500 went to the ghost, not to M.
  EXPECT_FALSE(c.Contains(500));
  EXPECT_TRUE(c.GhostContains(500));

  auto c2 = MakeS3(100);
  c2.Get(Get(500));
  c2.Get(Get(500));
  c2.Get(Get(500));  // two hits: freq = 2
  for (uint64_t i = 0; i < 110; ++i) {
    c2.Get(Get(1000 + i));
  }
  EXPECT_TRUE(c2.Contains(500));  // moved to M
  EXPECT_GE(c2.stats().moved_to_main, 1u);
}

TEST(S3FifoTest, ThresholdOneParamMovesSingleHitObjects) {
  auto c = MakeS3(100, "move_to_main_threshold=1");
  c.Get(Get(500));
  c.Get(Get(500));  // freq 1 >= threshold 1
  for (uint64_t i = 0; i < 110; ++i) {
    c.Get(Get(1000 + i));
  }
  EXPECT_TRUE(c.Contains(500));
}

TEST(S3FifoTest, MainReinsertionGivesSecondChance) {
  auto c = MakeS3(20, "small_ratio=0.5,move_to_main_threshold=1");
  // Put object 1 into M: two touches in S, then enough churn to reach the
  // S tail (capacity 20, so evictions start at the 21st resident).
  c.Get(Get(1));
  c.Get(Get(1));
  for (uint64_t i = 10; i < 40; ++i) {
    c.Get(Get(i));  // flushes S; 1 moves to M (access bits cleared)
  }
  ASSERT_TRUE(c.Contains(1));
  c.Get(Get(1));  // freq 1 inside M
  const uint64_t reinsertions_before = c.stats().main_reinsertions;
  // Churn of twice-touched objects floods M; when 1 reaches the M tail its
  // non-zero freq earns a reinsertion.
  for (uint64_t i = 100; i < 160; ++i) {
    c.Get(Get(i));
    c.Get(Get(i));
  }
  EXPECT_GT(c.stats().main_reinsertions, reinsertions_before);
}

TEST(S3FifoTest, FrequencyCappedAtMax) {
  auto c = MakeS3(100);
  for (int i = 0; i < 50; ++i) {
    c.Get(Get(1));  // far more than 3 hits; counter must cap (2 bits)
  }
  EXPECT_TRUE(c.Contains(1));  // and nothing overflows
}

TEST(S3FifoTest, SmallOccupiedPlusMainEqualsOccupied) {
  auto c = MakeS3(64);
  ZipfWorkloadConfig zc;
  zc.num_objects = 500;
  zc.num_requests = 20000;
  zc.alpha = 1.0;
  zc.seed = 2;
  Trace t = GenerateZipfTrace(zc);
  for (const Request& r : t.requests()) {
    c.Get(r);
    ASSERT_EQ(c.small_occupied() + c.main_occupied(), c.occupied());
    ASSERT_LE(c.occupied(), c.capacity());
  }
}

TEST(S3FifoTest, DemotionListenerFires) {
  auto c = MakeS3(50);
  uint64_t promoted = 0, demoted = 0;
  c.set_demotion_listener([&](const DemotionEvent& ev) {
    EXPECT_LE(ev.enter_time, ev.leave_time);
    if (ev.promoted) {
      ++promoted;
    } else {
      ++demoted;
    }
  });
  ZipfWorkloadConfig zc;
  zc.num_objects = 400;
  zc.num_requests = 10000;
  zc.alpha = 1.1;
  zc.seed = 3;
  Trace t = GenerateZipfTrace(zc);
  Simulate(t, c);
  EXPECT_GT(promoted, 0u);
  EXPECT_GT(demoted, 0u);
  EXPECT_EQ(promoted, c.stats().moved_to_main);
  EXPECT_EQ(demoted, c.stats().demoted_to_ghost);
}

TEST(S3FifoTest, GhostTableVariantTracksExactGhost) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 2000;
  zc.num_requests = 50000;
  zc.alpha = 0.8;
  zc.seed = 4;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 200;
  auto exact = CreateCache("s3fifo", config);
  config.params = "ghost_type=table";
  auto table = CreateCache("s3fifo", config);
  const double mr_exact = Simulate(t, *exact).MissRatio();
  const double mr_table = Simulate(t, *table).MissRatio();
  EXPECT_NEAR(mr_exact, mr_table, 0.01);
}

TEST(S3FifoTest, QueueTypeAblationRuns) {
  // §6.3: LRU queues instead of FIFO queues — must work and not change
  // results dramatically.
  ZipfWorkloadConfig zc;
  zc.num_objects = 1000;
  zc.num_requests = 30000;
  zc.alpha = 1.0;
  zc.seed = 5;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 100;
  auto fifo_q = CreateCache("s3fifo", config);
  config.params = "small_lru=1,main_lru=1";
  auto lru_q = CreateCache("s3fifo", config);
  const double mr_fifo = Simulate(t, *fifo_q).MissRatio();
  const double mr_lru = Simulate(t, *lru_q).MissRatio();
  EXPECT_NEAR(mr_fifo, mr_lru, 0.05);  // "the queue type does not matter"
}

TEST(S3FifoTest, SieveMainExtensionRuns) {
  // §7: "Sieve can be used to replace the large FIFO queue in S3-FIFO".
  ZipfWorkloadConfig zc;
  zc.num_objects = 1500;
  zc.num_requests = 50000;
  zc.alpha = 1.0;
  zc.new_object_fraction = 0.05;
  zc.delete_fraction = 0.01;
  zc.seed = 8;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 150;
  auto plain = CreateCache("s3fifo", config);
  config.params = "main_sieve=1";
  auto sieve_main = CreateCache("s3fifo", config);
  const double mr_plain = Simulate(t, *plain).MissRatio();
  const double mr_sieve = Simulate(t, *sieve_main).MissRatio();
  // Comparable efficiency; both must respect capacity.
  EXPECT_NEAR(mr_plain, mr_sieve, 0.05);
  EXPECT_LE(sieve_main->occupied(), 150u);
}

TEST(S3FifoTest, SieveMainSurvivesDeletesAtHand) {
  CacheConfig config;
  config.capacity = 30;
  config.params = "main_sieve=1,move_to_main_threshold=1,small_ratio=0.3";
  auto c = CreateCache("s3fifo", config);
  // Build up M, then delete aggressively while evicting (exercises the
  // hand-invalidates-on-delete path).
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    Request r;
    r.id = rng.NextBounded(200);
    r.op = rng.NextBool(0.1) ? OpType::kDelete : OpType::kGet;
    c->Get(r);
    ASSERT_LE(c->occupied(), 30u);
  }
}

TEST(S3FifoTest, BeatsLruOnHighOneHitWonderWorkload) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 2000;
  zc.num_requests = 60000;
  zc.alpha = 0.9;
  zc.new_object_fraction = 0.3;  // CDN-like: many one-hit wonders
  zc.seed = 6;
  Trace t = GenerateZipfTrace(zc);
  CacheConfig config;
  config.capacity = 200;
  auto s3 = CreateCache("s3fifo", config);
  auto lru = CreateCache("lru", config);
  auto fifo = CreateCache("fifo", config);
  const double mr_s3 = Simulate(t, *s3).MissRatio();
  const double mr_lru = Simulate(t, *lru).MissRatio();
  const double mr_fifo = Simulate(t, *fifo).MissRatio();
  EXPECT_LT(mr_s3, mr_lru);
  EXPECT_LT(mr_s3, mr_fifo);
}

// Two-hit pattern interleaved with a persistent hot set, preceded by a
// warmup of promotable objects that fills M. Without the warmup M stays
// empty and S transiently spans the whole cache (eviction only runs when the
// *total* cache is full, per Algorithm 1), hiding the adversarial effect.
// Designed for a cache of 200 objects: S pins at 20, M at 180.
Trace AdversarialMix(uint64_t num_objects, uint64_t lag) {
  constexpr uint64_t kHotSet = 60;
  constexpr uint64_t kWarmObjects = 400;
  std::vector<Request> out;
  // Warmup: 3 consecutive accesses give freq 2 — enough to be promoted to M
  // when S evicts them.
  for (uint64_t w = 0; w < kWarmObjects; ++w) {
    for (int rep = 0; rep < 3; ++rep) {
      Request r;
      r.id = (1ULL << 51) + w;
      r.time = out.size();
      out.push_back(r);
    }
  }
  Trace twohit = GenerateTwoHitPattern(num_objects, lag);
  uint64_t hot = 0;
  for (size_t i = 0; i < twohit.size(); ++i) {
    out.push_back(twohit[i]);
    Request r;
    r.id = (1ULL << 50) + (hot++ % kHotSet);
    r.time = out.size();
    out.push_back(r);
  }
  return Trace(std::move(out), "adversarial_mix");
}

TEST(S3FifoTest, AdversarialTwoHitPatternLosesToLru) {
  // §5.2 "Adversarial workloads": every object requested exactly twice with
  // a reuse distance that overflows S but fits the full cache.
  Trace t = AdversarialMix(5000, 30);
  CacheConfig config;
  config.capacity = 200;  // S ~= 20; two-hit reuse lands beyond S, within 200
  auto s3 = CreateCache("s3fifo", config);
  auto lru = CreateCache("lru", config);
  const double mr_s3 = Simulate(t, *s3).MissRatio();
  const double mr_lru = Simulate(t, *lru).MissRatio();
  EXPECT_GT(mr_s3, mr_lru);
}

// ---------------------------------------------------------------------------
// Differential test: an independent, straightforward transliteration of the
// algorithm (deques + hash maps, unit sizes), matching the reference
// implementation's eviction dispatch (evict from S while it exceeds its
// target, else from M).
class S3FifoReferenceModel {
 public:
  explicit S3FifoReferenceModel(uint64_t capacity, uint32_t threshold = 2)
      : capacity_(capacity),
        small_target_(std::max<uint64_t>(capacity / 10, 1)),
        ghost_capacity_(std::max<uint64_t>(capacity * 9 / 10, 1)),
        threshold_(threshold) {}

  bool Get(uint64_t id) {
    auto it = freq_.find(id);
    if (it != freq_.end()) {
      it->second = std::min(it->second + 1, 3u);
      return true;
    }
    while (small_.size() + main_.size() >= capacity_) {
      if (small_.size() > small_target_ || main_.empty()) {
        EvictSmall();
      } else {
        EvictMain();
      }
    }
    if (GhostContainsRef(id)) {
      GhostRemove(id);
      main_.push_front(id);
    } else {
      small_.push_front(id);
    }
    freq_[id] = 0;
    return false;
  }

 private:
  void EvictSmall() {
    const uint64_t t = small_.back();
    small_.pop_back();
    if (freq_[t] >= threshold_) {
      freq_[t] = 0;
      main_.push_front(t);
      while (main_.size() > capacity_ - small_target_) {
        EvictMain();
      }
    } else {
      freq_.erase(t);
      GhostInsert(t);
    }
  }

  void EvictMain() {
    while (!main_.empty()) {
      const uint64_t t = main_.back();
      main_.pop_back();
      if (freq_[t] > 0) {
        --freq_[t];
        main_.push_front(t);
      } else {
        freq_.erase(t);
        return;
      }
    }
  }

  // Ghost: FIFO of most-recent insertions per id. A slot is live iff its
  // sequence number matches the id's latest insertion — a plain
  // membership-set check would wrongly treat a removed-then-reinserted id's
  // stale front slot as live and evict the fresh entry early.
  void GhostInsert(uint64_t id) {
    while (ghost_seq_.size() >= ghost_capacity_) {
      while (!ghost_fifo_.empty()) {
        auto [seq, old] = ghost_fifo_.front();
        auto it = ghost_seq_.find(old);
        if (it != ghost_seq_.end() && it->second == seq) {
          break;
        }
        ghost_fifo_.pop_front();  // stale slot
      }
      if (ghost_fifo_.empty()) {
        break;
      }
      ghost_seq_.erase(ghost_fifo_.front().second);
      ghost_fifo_.pop_front();
    }
    const uint64_t seq = ghost_next_seq_++;
    ghost_seq_[id] = seq;
    ghost_fifo_.emplace_back(seq, id);
  }

  bool GhostContainsRef(uint64_t id) const { return ghost_seq_.count(id) != 0; }
  void GhostRemove(uint64_t id) { ghost_seq_.erase(id); }

  uint64_t capacity_, small_target_, ghost_capacity_;
  uint32_t threshold_;
  uint64_t ghost_next_seq_ = 0;
  std::deque<uint64_t> small_, main_;
  std::deque<std::pair<uint64_t, uint64_t>> ghost_fifo_;  // (seq, id)
  std::unordered_map<uint64_t, uint32_t> freq_;
  std::unordered_map<uint64_t, uint64_t> ghost_seq_;
};

class S3FifoDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(S3FifoDifferentialTest, MatchesReferenceModelPerRequest) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 800;
  zc.num_requests = 40000;
  zc.alpha = 1.0;
  zc.new_object_fraction = 0.05;
  zc.seed = GetParam();
  Trace t = GenerateZipfTrace(zc);

  CacheConfig config;
  config.capacity = 100;
  S3FifoCache impl(config);
  S3FifoReferenceModel ref(100);
  for (size_t i = 0; i < t.size(); ++i) {
    const bool a = impl.Get(t[i]);
    const bool b = ref.Get(t[i].id);
    ASSERT_EQ(a, b) << "divergence at request " << i << " id " << t[i].id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, S3FifoDifferentialTest, ::testing::Values(1, 2, 3, 4, 5));

// Structural invariants across a capacity sweep: queue accounting, frequency
// bounds, ghost/resident exclusivity.
class S3FifoCapacitySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(S3FifoCapacitySweepTest, InvariantsHoldAtEveryCapacity) {
  const uint64_t capacity = GetParam();
  ZipfWorkloadConfig zc;
  zc.num_objects = 2000;
  zc.num_requests = 30000;
  zc.alpha = 1.0;
  zc.new_object_fraction = 0.05;
  zc.delete_fraction = 0.02;
  zc.seed = capacity;
  Trace t = GenerateZipfTrace(zc);

  CacheConfig config;
  config.capacity = capacity;
  S3FifoCache cache(config);
  for (size_t i = 0; i < t.size(); ++i) {
    cache.Get(t[i]);
    ASSERT_LE(cache.occupied(), capacity);
    ASSERT_EQ(cache.small_occupied() + cache.main_occupied(), cache.occupied());
    if (i % 512 == 0) {
      // Resident ids must not be remembered by the ghost.
      ASSERT_FALSE(cache.Contains(t[i].id) && cache.GhostContains(t[i].id));
    }
  }
  // Flow conservation: every admission either left via quick demotion, via a
  // main eviction, via an explicit delete, or is still resident.
  const auto& stats = cache.stats();
  uint64_t deletes = 0;
  for (const Request& r : t.requests()) {
    if (r.op == OpType::kDelete) {
      ++deletes;  // upper bound on delete-removals (some miss)
    }
  }
  const uint64_t admitted = stats.inserted_to_small + stats.ghost_hit_inserts;
  const uint64_t departed = stats.demoted_to_ghost + stats.main_evictions;
  ASSERT_GE(admitted, departed + cache.occupied());
  EXPECT_LE(admitted - departed - cache.occupied(), deletes);
}

INSTANTIATE_TEST_SUITE_P(Capacities, S3FifoCapacitySweepTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 100, 500, 2000));

}  // namespace
}  // namespace s3fifo
