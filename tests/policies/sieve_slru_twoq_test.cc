// Behavioural tests for Sieve, SLRU, and 2Q.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(const std::string& name, uint64_t cap,
                            const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache(name, config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(SieveTest, VisitedObjectSurvivesOneSweep) {
  auto c = Make("sieve", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(1));  // mark visited
  c->Get(Get(4));  // hand sweeps: 1 spared (bit cleared), 2 evicted
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(2));
}

TEST(SieveTest, SurvivorKeepsPositionUnlikeClock) {
  // After surviving, the object stays in place; a subsequent eviction with
  // no new visit must evict it (the hand moved past it).
  auto c = Make("sieve", 3);
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));
  c->Get(Get(1));
  c->Get(Get(4));  // evicts 2, hand now newer than 1
  c->Get(Get(5));  // evicts 3 (next unvisited from hand toward head)
  EXPECT_TRUE(c->Contains(1));
  EXPECT_FALSE(c->Contains(3));
}

TEST(SieveTest, NoReuseDegradesToFifo) {
  Trace scan = GenerateSequentialScan(1000);
  auto sieve = Make("sieve", 64);
  auto fifo = Make("fifo", 64);
  EXPECT_EQ(Simulate(scan, *sieve).misses, Simulate(scan, *fifo).misses);
}

TEST(SlruTest, InsertIntoLowestSegment) {
  auto c = Make("slru", 8);
  c->Get(Get(1));
  EXPECT_TRUE(c->Contains(1));
}

TEST(SlruTest, UnreusedObjectsEvictedBeforeReused) {
  auto c = Make("slru", 8);
  for (uint64_t i = 1; i <= 8; ++i) {
    c->Get(Get(i));
  }
  c->Get(Get(1));  // promote 1 to segment 1
  // Fill with new objects; the promoted object outlives the one-hit ones.
  for (uint64_t i = 100; i < 107; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(1));
}

TEST(SlruTest, SegmentsParamRespected) {
  auto c = Make("slru", 16, "segments=2");
  EXPECT_EQ(c->Name(), "slru");
  for (uint64_t i = 0; i < 32; ++i) {
    c->Get(Get(i));
  }
  EXPECT_LE(c->occupied(), 16u);
}

TEST(TwoQTest, A1InHitDoesNotPromote) {
  // 2Q ignores hits inside A1in (correlated references).
  auto c = Make("2q", 8, "kin_ratio=0.5");
  c->Get(Get(1));
  c->Get(Get(1));  // hit in A1in; no promotion to Am
  // Push 1 out of A1in (kin capacity 4).
  for (uint64_t i = 2; i <= 9; ++i) {
    c->Get(Get(i));
  }
  EXPECT_FALSE(c->Contains(1));  // evicted to ghost despite its hit
}

TEST(TwoQTest, GhostHitEntersAm) {
  auto c = Make("2q", 8, "kin_ratio=0.5");
  c->Get(Get(1));
  for (uint64_t i = 2; i <= 9; ++i) {
    c->Get(Get(i));  // 1 demoted to A1out
  }
  ASSERT_FALSE(c->Contains(1));
  c->Get(Get(1));  // ghost hit: inserted into Am
  // Am objects survive a burst of new insertions (which churn A1in).
  for (uint64_t i = 100; i < 104; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(1));
}

TEST(TwoQTest, ScanDoesNotFlushAm) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 50;
  zc.num_requests = 4000;
  zc.alpha = 1.2;
  zc.seed = 3;
  Trace hot = GenerateZipfTrace(zc);
  auto c = Make("2q", 100);
  Simulate(hot, *c);  // warm Am with hot objects
  // A long scan touches A1in only.
  Trace scan = GenerateSequentialScan(2000);
  for (const Request& r : scan.requests()) {
    Request shifted = r;
    shifted.id += 1 << 20;  // avoid colliding with the hot set
    c->Get(shifted);
  }
  const SimResult after = Simulate(hot, *c);
  // Hot set should still mostly hit: the scan could not displace Am.
  EXPECT_GT(static_cast<double>(after.hits) / after.requests, 0.8);
}

}  // namespace
}  // namespace s3fifo
