// Behavioural tests for W-TinyLFU.
#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/workload/scan_workload.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

std::unique_ptr<Cache> Make(uint64_t cap, const std::string& params = "") {
  CacheConfig config;
  config.capacity = cap;
  config.params = params;
  return CreateCache("tinylfu", config);
}

Request Get(uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(TinyLfuTest, NameReflectsWindowSize) {
  CacheConfig config;
  config.capacity = 100;
  EXPECT_EQ(CreateCache("tinylfu", config)->Name(), "tinylfu");
  EXPECT_EQ(CreateCache("tinylfu-0.1", config)->Name(), "tinylfu-0.1");
}

TEST(TinyLfuTest, FrequentObjectWinsAdmissionDuel) {
  auto c = Make(100, "window_ratio=0.02");
  // Make object 1 very frequent (sketch counts survive its eviction).
  for (int i = 0; i < 10; ++i) {
    c->Get(Get(1));
  }
  // Fill main with one-touch objects.
  for (uint64_t i = 100; i < 250; ++i) {
    c->Get(Get(i));
  }
  // 1 was evicted at some point; re-request: its high frequency must win
  // the duel against a one-touch victim.
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));  // push 1 through the window
  EXPECT_TRUE(c->Contains(1));
}

TEST(TinyLfuTest, OneHitWondersDoNotDisplaceMain) {
  ZipfWorkloadConfig zc;
  zc.num_objects = 60;
  zc.num_requests = 6000;
  zc.alpha = 1.2;
  zc.seed = 9;
  Trace hot = GenerateZipfTrace(zc);
  auto c = Make(100);
  Simulate(hot, *c);
  // Scan of one-hit wonders: rejected by the frequency duel.
  Trace scan = GenerateSequentialScan(2000);
  for (const Request& r : scan.requests()) {
    Request shifted = r;
    shifted.id += 1 << 20;
    c->Get(shifted);
  }
  const SimResult after = Simulate(hot, *c);
  EXPECT_GT(static_cast<double>(after.hits) / after.requests, 0.9);
}

TEST(TinyLfuTest, ProbationHitPromotesToProtected) {
  auto c = Make(50, "window_ratio=0.02");
  c->Get(Get(1));
  c->Get(Get(2));
  c->Get(Get(3));  // 1 pushed into probation (main has room)
  c->Get(Get(1));  // probation hit -> protected
  // Fill probation with churn; 1 must survive (it sits in protected).
  for (uint64_t i = 10; i < 50; ++i) {
    c->Get(Get(i));
  }
  EXPECT_TRUE(c->Contains(1));
}

TEST(TinyLfuTest, SketchAgingForgetsStaleFrequencies) {
  // After many sample periods, an old heavy hitter's estimate decays and a
  // new hot object can displace it.
  auto c = Make(32, "window_ratio=0.05,sample_factor=2");
  for (int i = 0; i < 15; ++i) {
    c->Get(Get(1));
  }
  // Long run of fresh traffic triggers repeated aging.
  for (uint64_t i = 100; i < 3000; ++i) {
    c->Get(Get(i % 200 + 100));
  }
  // Object 1's stale frequency no longer guarantees residency.
  c->Get(Get(500000));
  EXPECT_LE(c->occupied(), 32u);
}

TEST(TinyLfuTest, LargerWindowHelpsRecencyWorkloads) {
  // The paper (§5.2): TinyLFU's 1% window evicts new objects too fast on
  // some traces; TinyLFU-0.1 fixes the tail. A workload where every object
  // is requested twice with moderate reuse distance exercises exactly this.
  Trace two_hit = GenerateTwoHitPattern(3000, 4);
  CacheConfig config;
  config.capacity = 100;
  auto tiny = CreateCache("tinylfu", config);
  auto tiny01 = CreateCache("tinylfu-0.1", config);
  const double mr1 = Simulate(two_hit, *tiny).MissRatio();
  const double mr01 = Simulate(two_hit, *tiny01).MissRatio();
  EXPECT_LE(mr01, mr1 + 1e-9);
}

}  // namespace
}  // namespace s3fifo
