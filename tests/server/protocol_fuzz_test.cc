// Property/fuzz test for the incremental protocol parser: a pipelined
// stream of (mostly valid, sometimes malformed) commands must decode to the
// SAME sequence of ops and errors no matter how it is torn into read chunks.
// The chunked run replays the server's real flow — RingBuffer append, parse
// until kNeedMore, consume — with every chunk size from 1 byte upward, so a
// frame gets split at every byte boundary somewhere in the sweep.
// On divergence the fragment list is ddmin-shrunk (chunk removal) to a
// minimal reproducer and printed seed-first, replayable from the log alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/ring_buffer.h"
#include "src/util/rng.h"

namespace s3fifo {
namespace {

// One observed parser outcome, canonicalized for comparison.
struct Event {
  ParseStatus status;
  std::string detail;  // ops: "type key1,key2=value"; errors: the message

  bool operator==(const Event& other) const {
    return status == other.status && detail == other.detail;
  }
};

Event OpEvent(const ParseOutput& out) {
  const ParsedOp& op = out.ops.back();
  std::string d = std::to_string(static_cast<int>(op.type)) + " ";
  for (uint32_t k = 0; k < op.key_count; ++k) {
    if (k > 0) {
      d += ",";
    }
    d.append(out.keys[op.key_begin + k]);
  }
  if (op.type == CmdType::kSet) {
    d += "=";
    d.append(op.value);
    d += op.noreply ? " noreply" : "";
  }
  return {ParseStatus::kOk, std::move(d)};
}

// Reference: parse the whole stream in one contiguous view.
std::vector<Event> ParseWhole(const std::string& stream) {
  std::vector<Event> events;
  std::string_view rest = stream;
  ParseOutput out;
  while (!rest.empty()) {
    const ParseResult r = ParseCommand(rest, out);
    if (r.status == ParseStatus::kNeedMore) {
      break;  // trailing torn frame
    }
    if (r.status == ParseStatus::kOk) {
      events.push_back(OpEvent(out));
    } else {
      events.push_back({r.status, r.error});
    }
    rest.remove_prefix(r.consumed);
    if (r.status == ParseStatus::kFatal) {
      break;  // the server would close here
    }
  }
  return events;
}

// The server's flow: bytes arrive in `chunk`-sized reads into a RingBuffer;
// parse until kNeedMore after each read.
std::vector<Event> ParseChunked(const std::string& stream, size_t chunk) {
  std::vector<Event> events;
  RingBuffer rb(16, stream.size() + 16);
  size_t fed = 0;
  bool fatal = false;
  while (fed < stream.size() && !fatal) {
    const size_t take = std::min(chunk, stream.size() - fed);
    EXPECT_TRUE(rb.EnsureWritable(take));
    std::memcpy(rb.WritePtr(), stream.data() + fed, take);
    rb.CommitWrite(take);
    fed += take;
    ParseOutput out;
    for (;;) {
      const ParseResult r = ParseCommand(rb.view(), out);
      if (r.status == ParseStatus::kNeedMore) {
        break;
      }
      if (r.status == ParseStatus::kOk) {
        events.push_back(OpEvent(out));
      } else {
        events.push_back({r.status, r.error});
      }
      rb.Consume(r.consumed);
      if (r.status == ParseStatus::kFatal) {
        fatal = true;
        break;
      }
    }
  }
  return events;
}

std::string RandomKey(Rng& rng) {
  static const char* pool[] = {"a", "obj42", "user:1001", "0", "9999999",
                               "k-with-dash", "x"};
  if (rng.NextDouble() < 0.8) {
    return pool[rng.NextBounded(sizeof(pool) / sizeof(pool[0]))];
  }
  // Occasionally stress key-length edges (valid and one-over).
  return std::string(rng.NextDouble() < 0.5 ? kMaxKeyLen : kMaxKeyLen + 1, 'q');
}

// One stream fragment: usually a well-formed command, sometimes garbage.
std::string RandomFragment(Rng& rng) {
  const double p = rng.NextDouble();
  if (p < 0.35) {
    std::string cmd = "get";
    const uint64_t nkeys = 1 + rng.NextBounded(4);
    for (uint64_t i = 0; i < nkeys; ++i) {
      cmd += " " + RandomKey(rng);
    }
    return cmd + "\r\n";
  }
  if (p < 0.60) {
    const std::string body(rng.NextBounded(40), 'v');
    std::string cmd = "set " + RandomKey(rng) + " 0 0 " +
                      std::to_string(body.size());
    if (rng.NextDouble() < 0.2) {
      cmd += " noreply";
    }
    return cmd + "\r\n" + body + "\r\n";
  }
  if (p < 0.72) {
    return "delete " + RandomKey(rng) + "\r\n";
  }
  if (p < 0.78) {
    return rng.NextDouble() < 0.5 ? std::string("stats\r\n")
                                  : std::string("version\r\n");
  }
  // Malformed tails: unknown verbs, missing args, bad endings, bad chunks,
  // stray binary bytes.
  switch (rng.NextBounded(6)) {
    case 0:
      return "frobnicate all the things\r\n";
    case 1:
      return "get\r\n";
    case 2:
      return "set k 0 0\r\n";
    case 3:
      return "set k 0 0 5\r\nABCDEFGH\r\n";  // body longer than declared
    case 4:
      return "get k\n";  // bare LF
    default: {
      std::string junk;
      const uint64_t len = 1 + rng.NextBounded(12);
      for (uint64_t i = 0; i < len; ++i) {
        char b = static_cast<char>(rng.NextBounded(256));
        if (b == '\n') {
          b = '_';  // keep junk inside one line so the case stays local
        }
        junk.push_back(b);
      }
      return junk + "\r\n";
    }
  }
}

std::string Concat(const std::vector<std::string>& fragments) {
  std::string s;
  for (const auto& f : fragments) {
    s += f;
  }
  return s;
}

// Returns "" on success or a description of the first divergence.
std::string CheckStream(const std::vector<std::string>& fragments) {
  const std::string stream = Concat(fragments);
  const std::vector<Event> whole = ParseWhole(stream);
  for (const size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                             size_t{17}, size_t{64}, size_t{1024}}) {
    const std::vector<Event> chunked = ParseChunked(stream, chunk);
    if (chunked.size() != whole.size()) {
      return "event count mismatch at chunk=" + std::to_string(chunk) + ": " +
             std::to_string(chunked.size()) + " vs " +
             std::to_string(whole.size());
    }
    for (size_t i = 0; i < whole.size(); ++i) {
      if (!(chunked[i] == whole[i])) {
        return "event " + std::to_string(i) + " mismatch at chunk=" +
               std::to_string(chunk) + ": '" + chunked[i].detail + "' vs '" +
               whole[i].detail + "'";
      }
    }
  }
  return "";
}

// ddmin-lite: drop fragment chunks while the divergence reproduces.
std::vector<std::string> Shrink(std::vector<std::string> fragments) {
  size_t chunk = fragments.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start + chunk <= fragments.size();) {
      std::vector<std::string> candidate(fragments.begin(),
                                         fragments.begin() + start);
      candidate.insert(candidate.end(), fragments.begin() + start + chunk,
                       fragments.end());
      if (!CheckStream(candidate).empty()) {
        fragments = std::move(candidate);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      chunk /= 2;
    }
  }
  return fragments;
}

void FuzzSeed(uint64_t seed, size_t num_fragments) {
  Rng rng(seed);
  std::vector<std::string> fragments;
  fragments.reserve(num_fragments);
  for (size_t i = 0; i < num_fragments; ++i) {
    fragments.push_back(RandomFragment(rng));
  }
  const std::string error = CheckStream(fragments);
  if (error.empty()) {
    return;
  }
  const std::vector<std::string> shrunk = Shrink(fragments);
  std::fprintf(stderr, "protocol fuzz failure (seed=%llu): %s\nshrunk to %zu fragments:\n",
               static_cast<unsigned long long>(seed), error.c_str(), shrunk.size());
  for (const auto& f : shrunk) {
    std::string printable;
    for (char ch : f) {
      if (ch >= 0x20 && ch < 0x7f) {
        printable.push_back(ch);
      } else {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned char>(ch));
        printable += buf;
      }
    }
    std::fprintf(stderr, "  \"%s\"\n", printable.c_str());
  }
  FAIL() << "chunked parse diverged from whole-buffer parse (seed " << seed
         << "): " << error;
}

TEST(ProtocolFuzzTest, ChunkedEqualsWholeAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    FuzzSeed(seed, 60);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(ProtocolFuzzTest, EveryByteBoundaryOnDenseStream) {
  // A short deliberately nasty stream, torn at every boundary by the
  // chunk=1 pass inside CheckStream.
  const std::vector<std::string> fragments = {
      "get a b c\r\n",
      "set s 1 2 3\r\nxyz\r\n",
      "set t 0 0 0\r\n\r\n",  // empty body
      "bogus\r\n",
      "get k\n",
      "delete a noreply\r\n",
      "stats\r\n",
      "quit\r\n",
  };
  EXPECT_EQ(CheckStream(fragments), "");
}

}  // namespace
}  // namespace s3fifo
