#include "src/server/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace s3fifo {
namespace {

ParseResult Parse(std::string_view data, ParseOutput& out) {
  return ParseCommand(data, out);
}

TEST(ProtocolTest, SingleGet) {
  ParseOutput out;
  const ParseResult r = Parse("get foo\r\n", out);
  ASSERT_EQ(r.status, ParseStatus::kOk);
  EXPECT_EQ(r.consumed, 9u);
  ASSERT_EQ(out.ops.size(), 1u);
  EXPECT_EQ(out.ops[0].type, CmdType::kGet);
  EXPECT_EQ(out.ops[0].key_count, 1u);
  EXPECT_EQ(out.keys[0], "foo");
}

TEST(ProtocolTest, MultiKeyGetVariants) {
  for (const char* verb : {"get", "gets", "mget"}) {
    ParseOutput out;
    const std::string line = std::string(verb) + " a bb ccc\r\n";
    const ParseResult r = Parse(line, out);
    ASSERT_EQ(r.status, ParseStatus::kOk) << verb;
    ASSERT_EQ(out.ops[0].key_count, 3u) << verb;
    EXPECT_EQ(out.keys[0], "a");
    EXPECT_EQ(out.keys[1], "bb");
    EXPECT_EQ(out.keys[2], "ccc");
  }
}

TEST(ProtocolTest, SetWithBodyAndNoreply) {
  ParseOutput out;
  const ParseResult r = Parse("set k 7 0 5 noreply\r\nhello\r\nget k\r\n", out);
  ASSERT_EQ(r.status, ParseStatus::kOk);
  EXPECT_EQ(r.consumed, 28u);  // header + 5-byte body + crlf
  ASSERT_EQ(out.ops.size(), 1u);
  EXPECT_EQ(out.ops[0].type, CmdType::kSet);
  EXPECT_EQ(out.ops[0].set_flags, 7u);
  EXPECT_TRUE(out.ops[0].noreply);
  EXPECT_EQ(out.ops[0].value, "hello");
}

TEST(ProtocolTest, SetBodyMayContainNewlines) {
  // Body bytes are length-framed, so \r\n inside the body is data.
  ParseOutput out;
  const ParseResult r = Parse("set k 0 0 6\r\na\r\nb!!\r\n", out);
  ASSERT_EQ(r.status, ParseStatus::kOk);
  EXPECT_EQ(out.ops[0].value, std::string_view("a\r\nb!!"));
}

TEST(ProtocolTest, TornFramesAtEveryBoundaryNeedMore) {
  const std::string frame = "set key1 0 0 4\r\nbody\r\nget key1 other\r\n";
  // Every strict prefix that does not contain the full first command must
  // return kNeedMore and consume nothing.
  const size_t first_cmd_end = 22;  // set header + body + crlf
  for (size_t cut = 0; cut < first_cmd_end; ++cut) {
    ParseOutput out;
    const ParseResult r = Parse(std::string_view(frame).substr(0, cut), out);
    EXPECT_EQ(r.status, ParseStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(r.consumed, 0u) << "cut=" << cut;
    EXPECT_TRUE(out.ops.empty()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, PipelinedBufferParsesSequentially) {
  const std::string buf =
      "get a\r\nset b 0 0 2\r\nxy\r\ndelete c\r\nstats\r\nversion\r\nquit\r\n";
  ParseOutput out;
  std::string_view rest = buf;
  std::vector<CmdType> types;
  while (!rest.empty()) {
    const ParseResult r = ParseCommand(rest, out);
    ASSERT_EQ(r.status, ParseStatus::kOk);
    types.push_back(out.ops.back().type);
    rest.remove_prefix(r.consumed);
  }
  ASSERT_EQ(types.size(), 6u);
  EXPECT_EQ(types[0], CmdType::kGet);
  EXPECT_EQ(types[1], CmdType::kSet);
  EXPECT_EQ(types[2], CmdType::kDelete);
  EXPECT_EQ(types[3], CmdType::kStats);
  EXPECT_EQ(types[4], CmdType::kVersion);
  EXPECT_EQ(types[5], CmdType::kQuit);
}

TEST(ProtocolTest, MalformedCommandsConsumeTheLine) {
  const struct {
    const char* input;
    const char* error_prefix;
  } cases[] = {
      {"bogus\r\n", "ERROR"},
      {"get\r\n", "CLIENT_ERROR"},                  // no keys
      {"set k 0 0\r\n", "CLIENT_ERROR"},            // missing bytes
      {"set k 0 0 nan\r\n", "CLIENT_ERROR"},        // non-numeric bytes
      {"delete\r\n", "CLIENT_ERROR"},               // no key
      {"stats now\r\n", "CLIENT_ERROR"},            // stats takes no args
      {"get k\n", "CLIENT_ERROR"},                  // bare LF
      {"set k 0 0 2\r\nxyz\r\n", "CLIENT_ERROR"},   // body not \r\n-terminated
  };
  for (const auto& c : cases) {
    ParseOutput out;
    const ParseResult r = Parse(c.input, out);
    ASSERT_EQ(r.status, ParseStatus::kError) << c.input;
    EXPECT_GT(r.consumed, 0u) << c.input;
    EXPECT_EQ(std::string(r.error).rfind(c.error_prefix, 0), 0u) << c.input;
    EXPECT_TRUE(out.ops.empty()) << c.input;
  }
}

TEST(ProtocolTest, OversizedKeyRejected) {
  ParseOutput out;
  const std::string key(kMaxKeyLen + 1, 'k');
  const ParseResult r = Parse("get " + key + "\r\n", out);
  ASSERT_EQ(r.status, ParseStatus::kError);
  // A key at exactly the limit is fine.
  const std::string max_key(kMaxKeyLen, 'k');
  ParseOutput out2;
  EXPECT_EQ(Parse("get " + max_key + "\r\n", out2).status, ParseStatus::kOk);
}

TEST(ProtocolTest, KeyWithControlBytesRejected) {
  ParseOutput out;
  EXPECT_EQ(Parse("get a\tb\r\n", out).status, ParseStatus::kError);
  EXPECT_EQ(Parse(std::string_view("get a\x7f\r\n", 9), out).status,
            ParseStatus::kError);
}

TEST(ProtocolTest, FatalFrames) {
  // Over-long command line: the stream cannot be re-synchronized.
  ParseOutput out;
  const std::string long_line(kMaxLineLen + 10, 'x');
  const ParseResult r1 = Parse(long_line, out);
  EXPECT_EQ(r1.status, ParseStatus::kFatal);
  // Oversized set body: refused before buffering.
  ParseOutput out2;
  const ParseResult r2 = Parse("set k 0 0 99999999\r\n", out2);
  EXPECT_EQ(r2.status, ParseStatus::kFatal);
  EXPECT_EQ(std::string(r2.error).rfind("SERVER_ERROR", 0), 0u);
}

TEST(ProtocolTest, TooManyKeysIsAnErrorNotTruncation) {
  std::string line = "get";
  for (int i = 0; i < 100; ++i) {
    line += " k" + std::to_string(i);
  }
  line += "\r\n";
  ParseOutput out;
  const ParseResult r = Parse(line, out);
  ASSERT_EQ(r.status, ParseStatus::kError);
  EXPECT_TRUE(out.ops.empty());  // never a silently-shortened get
}

TEST(ProtocolTest, KeyToIdDecimalRoundTrip) {
  EXPECT_EQ(KeyToId("0"), 0u);
  EXPECT_EQ(KeyToId("42"), 42u);
  EXPECT_EQ(KeyToId("18446744073709551615"), ~uint64_t{0});
  // Non-decimal and overflowing keys hash; distinct keys should (with these
  // specific values) get distinct ids.
  EXPECT_NE(KeyToId("foo"), KeyToId("bar"));
  EXPECT_NE(KeyToId("18446744073709551616"), 0u);  // overflow -> hashed
  // Hash is deterministic.
  EXPECT_EQ(KeyToId("foo"), KeyToId("foo"));
}

}  // namespace
}  // namespace s3fifo
