#include "src/server/ring_buffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace s3fifo {
namespace {

void Write(RingBuffer& rb, std::string_view s) {
  ASSERT_TRUE(rb.EnsureWritable(s.size()));
  std::memcpy(rb.WritePtr(), s.data(), s.size());
  rb.CommitWrite(s.size());
}

TEST(RingBufferTest, WriteReadConsume) {
  RingBuffer rb(16, 64);
  EXPECT_EQ(rb.size(), 0u);
  Write(rb, "hello world");
  EXPECT_EQ(rb.view(), "hello world");
  rb.Consume(6);
  EXPECT_EQ(rb.view(), "world");
  rb.Consume(5);
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBufferTest, ViewsStayValidAcrossConsume) {
  RingBuffer rb(32, 64);
  Write(rb, "cmd1\ncmd2\n");
  const std::string_view first = rb.view().substr(0, 5);
  rb.Consume(5);
  // Consume must not move memory: the earlier view still reads "cmd1\n".
  EXPECT_EQ(first, "cmd1\n");
  EXPECT_EQ(rb.view(), "cmd2\n");
}

TEST(RingBufferTest, CompactsConsumedPrefixOnDemand) {
  RingBuffer rb(8, 8);
  Write(rb, "abcdefgh");  // full
  rb.Consume(6);
  EXPECT_EQ(rb.view(), "gh");
  // No room at the tail, but compaction reclaims the consumed prefix.
  ASSERT_TRUE(rb.EnsureWritable(6));
  Write(rb, "ijklmn");
  EXPECT_EQ(rb.view(), "ghijklmn");
}

TEST(RingBufferTest, GrowsUpToMaxCapacityOnly) {
  RingBuffer rb(4, 16);
  Write(rb, "0123456789abcdef");  // grows 4 -> 16
  EXPECT_EQ(rb.size(), 16u);
  EXPECT_FALSE(rb.EnsureWritable(1));  // at max with everything unread
  rb.Consume(10);
  EXPECT_TRUE(rb.EnsureWritable(10));  // compaction frees the space
  EXPECT_EQ(rb.view(), "abcdef");
}

TEST(RingBufferTest, ResetsCursorsWhenFullyConsumed) {
  RingBuffer rb(8, 8);
  for (int round = 0; round < 100; ++round) {
    Write(rb, "12345678");
    rb.Consume(8);  // full consume resets to offset 0: no compaction needed
  }
  EXPECT_TRUE(rb.EnsureWritable(8));
}

TEST(RingBufferTest, FillToCapacityThenRecycleAcrossTheSeam) {
  // Fill the buffer to its hard capacity, drain partially, and keep cycling
  // so every write lands across the compaction seam. The readable view must
  // stay byte-exact throughout — this is the pattern a pipelining client
  // puts the parser buffer through at saturation.
  RingBuffer rb(16, 16);
  std::string expect;
  Write(rb, "0123456789abcdef");  // exactly full
  expect = "0123456789abcdef";
  EXPECT_EQ(rb.WriteCapacity(), 0u);
  for (int round = 0; round < 64; ++round) {
    rb.Consume(4);
    expect.erase(0, 4);
    const std::string chunk(4, static_cast<char>('A' + (round % 26)));
    Write(rb, chunk);  // forces the memmove: tail space is gone
    expect += chunk;
    ASSERT_EQ(rb.view(), expect) << "round " << round;
    ASSERT_EQ(rb.size(), 16u);
  }
}

TEST(RingBufferTest, TornFrameSurvivesCompaction) {
  // A frame torn across the compaction boundary: the first fragment sits at
  // the end of the storage, the buffer compacts to admit the rest, and the
  // reassembled frame must read back contiguously — the exact situation an
  // incremental parser leaves behind when a command straddles two reads.
  RingBuffer rb(16, 16);
  // 11 bytes of parsed traffic followed by the torn prefix "set " ending
  // flush against the end of storage (a full consume would reset the
  // cursors; a partial one leaves the fragment stranded at the seam).
  Write(rb, "0123456789ab");
  rb.Consume(11);
  Write(rb, "set ");  // lands at offsets 12..15: storage is now brim-full
  EXPECT_EQ(rb.WriteCapacity(), 0u);
  EXPECT_EQ(rb.view(), "bset ");
  rb.Consume(1);  // "b" parsed; only the torn fragment remains, mid-buffer
  // The remainder arrives; admitting it must compact (slide "set " to the
  // front), not drop or reorder the torn prefix.
  Write(rb, "k 0 0 1\r\nZ");
  EXPECT_EQ(rb.view(), "set k 0 0 1\r\nZ");
  // Views taken before the compaction are invalid by contract, but the data
  // itself is contiguous: one more cycle proves the seam is gone.
  rb.Consume(rb.size());
  Write(rb, "get k\r\n");
  EXPECT_EQ(rb.view(), "get k\r\n");
}

TEST(RingBufferTest, ReserveCommitAtExactlyFull) {
  // Reserve exactly the remaining capacity, commit every byte of it, and
  // verify the buffer reports full-by-one-byte precisely: EnsureWritable(1)
  // must fail while any unread byte remains, then succeed after a 1-byte
  // consume frees exactly one slot.
  RingBuffer rb(8, 8);
  Write(rb, "abc");
  ASSERT_TRUE(rb.EnsureWritable(5));  // exact remaining space
  EXPECT_EQ(rb.WriteCapacity(), 5u);
  std::memcpy(rb.WritePtr(), "defgh", 5);
  rb.CommitWrite(5);
  EXPECT_EQ(rb.size(), 8u);
  EXPECT_EQ(rb.WriteCapacity(), 0u);
  EXPECT_FALSE(rb.EnsureWritable(1));  // full: nothing consumable to reclaim
  EXPECT_EQ(rb.view(), "abcdefgh");    // the failed reserve didn't disturb data
  rb.Consume(1);
  ASSERT_TRUE(rb.EnsureWritable(1));  // one byte freed -> exactly one admitted
  EXPECT_EQ(rb.WriteCapacity(), 1u);
  std::memcpy(rb.WritePtr(), "i", 1);
  rb.CommitWrite(1);
  EXPECT_EQ(rb.view(), "bcdefghi");
  EXPECT_FALSE(rb.EnsureWritable(1));  // full again at the exact boundary
}

}  // namespace
}  // namespace s3fifo
