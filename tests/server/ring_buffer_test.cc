#include "src/server/ring_buffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace s3fifo {
namespace {

void Write(RingBuffer& rb, std::string_view s) {
  ASSERT_TRUE(rb.EnsureWritable(s.size()));
  std::memcpy(rb.WritePtr(), s.data(), s.size());
  rb.CommitWrite(s.size());
}

TEST(RingBufferTest, WriteReadConsume) {
  RingBuffer rb(16, 64);
  EXPECT_EQ(rb.size(), 0u);
  Write(rb, "hello world");
  EXPECT_EQ(rb.view(), "hello world");
  rb.Consume(6);
  EXPECT_EQ(rb.view(), "world");
  rb.Consume(5);
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBufferTest, ViewsStayValidAcrossConsume) {
  RingBuffer rb(32, 64);
  Write(rb, "cmd1\ncmd2\n");
  const std::string_view first = rb.view().substr(0, 5);
  rb.Consume(5);
  // Consume must not move memory: the earlier view still reads "cmd1\n".
  EXPECT_EQ(first, "cmd1\n");
  EXPECT_EQ(rb.view(), "cmd2\n");
}

TEST(RingBufferTest, CompactsConsumedPrefixOnDemand) {
  RingBuffer rb(8, 8);
  Write(rb, "abcdefgh");  // full
  rb.Consume(6);
  EXPECT_EQ(rb.view(), "gh");
  // No room at the tail, but compaction reclaims the consumed prefix.
  ASSERT_TRUE(rb.EnsureWritable(6));
  Write(rb, "ijklmn");
  EXPECT_EQ(rb.view(), "ghijklmn");
}

TEST(RingBufferTest, GrowsUpToMaxCapacityOnly) {
  RingBuffer rb(4, 16);
  Write(rb, "0123456789abcdef");  // grows 4 -> 16
  EXPECT_EQ(rb.size(), 16u);
  EXPECT_FALSE(rb.EnsureWritable(1));  // at max with everything unread
  rb.Consume(10);
  EXPECT_TRUE(rb.EnsureWritable(10));  // compaction frees the space
  EXPECT_EQ(rb.view(), "abcdef");
}

TEST(RingBufferTest, ResetsCursorsWhenFullyConsumed) {
  RingBuffer rb(8, 8);
  for (int round = 0; round < 100; ++round) {
    Write(rb, "12345678");
    rb.Consume(8);  // full consume resets to offset 0: no compaction needed
  }
  EXPECT_TRUE(rb.EnsureWritable(8));
}

}  // namespace
}  // namespace s3fifo
