// End-to-end tests for the cache server over loopback TCP, parameterized
// over both transport backends (epoll and io_uring — the uring leg skips,
// not fails, where the kernel denies io_uring_setup):
//  * protocol smoke (set/get/delete/stats, pipelining, noreply, fragmented
//    writes, protocol errors, quit);
//  * the §5.3 consistency check taken all the way through the network
//    stack: a deterministic trace replayed through a shards=1 server must
//    produce hit/miss counts IDENTICAL to the simulator's s3fifo policy —
//    the server's parsing, batching, and GetBatch pipeline may not change a
//    single eviction decision.
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <arpa/inet.h>

#include <string>
#include <vector>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/core/cache_factory.h"
#include "src/server/cache_server.h"
#include "src/server/loadgen.h"
#include "src/server/transport.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// Minimal blocking client for the smoke tests.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() { close(fd_); }

  bool connected() const { return connected_; }

  void Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = send(fd_, data.data() + sent, data.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  // Reads until the accumulated response ends with `terminator` (or the
  // expected number of lines arrived); 2s timeout turns a hang into a fail.
  std::string ReadUntil(std::string_view suffix) {
    timeval tv{2, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string buf;
    char chunk[4096];
    while (buf.size() < suffix.size() ||
           buf.compare(buf.size() - suffix.size(), suffix.size(), suffix) != 0) {
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        // With an in-process io_uring server, task-work notifications can
        // interrupt this thread's syscalls; a timed recv is not restartable.
        continue;
      }
      if (n <= 0) {
        ADD_FAILURE() << "short read; got so far: " << buf;
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
    return buf;
  }

  // True if the server closed the connection (EOF within the 2s timeout).
  bool AtEof() {
    timeval tv{2, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char ch;
    ssize_t n;
    do {
      n = recv(fd_, &ch, 1, 0);
    } while (n < 0 && errno == EINTR);
    return n == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

ServerConfig SmallServerConfig(TransportKind transport) {
  ServerConfig config;
  config.workers = 1;
  config.cache.capacity_objects = 1000;
  config.cache.value_size = 8;
  config.cache.cache_shards = 1;
  config.transport = transport;
  return config;
}

// Every test in this file runs once per transport backend. A request for
// io_uring where the kernel (or a seccomp sandbox) denies it is a SKIP, not
// a failure — availability is probed, never assumed.
class TransportParamTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override {
    if (GetParam() == TransportKind::kUring) {
      std::string why;
      if (!IoUringAvailable(&why)) {
        GTEST_SKIP() << "io_uring unavailable: " << why;
      }
    }
  }
};

class CacheServerTest : public TransportParamTest {};
class ServerSimulatorParityTest : public TransportParamTest {};

std::string TransportParamName(
    const ::testing::TestParamInfo<TransportKind>& info) {
  return TransportKindName(info.param);
}

INSTANTIATE_TEST_SUITE_P(Transports, CacheServerTest,
                         ::testing::Values(TransportKind::kEpoll,
                                           TransportKind::kUring),
                         TransportParamName);
INSTANTIATE_TEST_SUITE_P(Transports, ServerSimulatorParityTest,
                         ::testing::Values(TransportKind::kEpoll,
                                           TransportKind::kUring),
                         TransportParamName);

TEST_P(CacheServerTest, SetGetDeleteRoundTrip) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("set apple 0 0 5\r\ncrisp\r\n");
  EXPECT_EQ(client.ReadUntil("STORED\r\n"), "STORED\r\n");
  client.Send("get apple\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"), "VALUE apple 0 5\r\ncrisp\r\nEND\r\n");
  client.Send("set apple 0 0 7\r\nreplace\r\n");
  EXPECT_EQ(client.ReadUntil("STORED\r\n"), "STORED\r\n");
  client.Send("get apple\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"), "VALUE apple 0 7\r\nreplace\r\nEND\r\n");
  client.Send("delete apple\r\n");
  EXPECT_EQ(client.ReadUntil("DELETED\r\n"), "DELETED\r\n");
  client.Send("delete apple\r\n");
  EXPECT_EQ(client.ReadUntil("NOT_FOUND\r\n"), "NOT_FOUND\r\n");
  // A get after delete is an on-demand-fill miss: responds END (miss) and
  // re-admits the object with a generated payload.
  client.Send("get apple\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"), "END\r\n");
  // The refilled object now hits, serving the generated 8-byte payload.
  client.Send("get apple\r\n");
  const std::string refill = client.ReadUntil("END\r\n");
  EXPECT_EQ(refill.rfind("VALUE apple 0 8\r\n", 0), 0u) << refill;
  EXPECT_EQ(refill.size(), std::string("VALUE apple 0 8\r\n").size() + 8 + 2 + 5);
  server.Stop();
}

TEST_P(CacheServerTest, PipelinedCommandsAnswerInOrder) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // One write carrying many commands; responses must come back in command
  // order with the gets fused into server-side batches.
  client.Send("set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\n");
  client.ReadUntil("STORED\r\nSTORED\r\n");
  client.Send("get a\r\nget b\r\nget miss1\r\nget a b\r\nversion\r\n");
  const std::string resp = client.ReadUntil("VERSION s3fifo-server 1.0\r\n");
  EXPECT_EQ(resp,
            "VALUE a 0 1\r\nA\r\nEND\r\n"
            "VALUE b 0 1\r\nB\r\nEND\r\n"
            "END\r\n"
            "VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n"
            "VERSION s3fifo-server 1.0\r\n");

  const ServerStats stats = server.TotalStats();
  EXPECT_EQ(stats.cmd_get, 5u);  // a, b, miss1, a, b
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_gets, 5u);
  server.Stop();
}

TEST_P(CacheServerTest, FragmentedWritesReassemble) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Send a set + get one byte at a time: the incremental parser must
  // reassemble across reads without consuming a torn frame.
  const std::string stream = "set torn 0 0 3\r\nxyz\r\nget torn\r\n";
  for (char ch : stream) {
    client.Send(std::string_view(&ch, 1));
  }
  EXPECT_EQ(client.ReadUntil("END\r\n"),
            "STORED\r\nVALUE torn 0 3\r\nxyz\r\nEND\r\n");
  server.Stop();
}

TEST_P(CacheServerTest, ProtocolErrorsDoNotDesynchronize) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("bogus\r\nset k 0 0 1\r\nZ\r\nget k\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"),
            "ERROR\r\nSTORED\r\nVALUE k 0 1\r\nZ\r\nEND\r\n");
  EXPECT_EQ(server.TotalStats().parse_errors, 1u);
  server.Stop();
}

TEST_P(CacheServerTest, NoreplySuppressesResponses) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // noreply set and delete produce no response lines; the trailing get
  // proves the set still executed and nothing else was emitted before it.
  client.Send("set s 0 0 1 noreply\r\nS\r\ndelete missing noreply\r\nget s\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"), "VALUE s 0 1\r\nS\r\nEND\r\n");
  server.Stop();
}

TEST_P(CacheServerTest, StatsReportServerCounters) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("get one\r\nget one\r\nstats\r\n");
  // Three responses each end in END; accumulate until the stats block (the
  // only one with STAT lines) has fully arrived.
  std::string resp;
  do {
    resp += client.ReadUntil("END\r\n");
  } while (resp.find("STAT curr_items") == std::string::npos);
  EXPECT_NE(resp.find("STAT cmd_get 2\r\n"), std::string::npos);
  EXPECT_NE(resp.find("STAT get_hits 1\r\n"), std::string::npos);
  EXPECT_NE(resp.find("STAT get_misses 1\r\n"), std::string::npos);
  EXPECT_NE(resp.find("STAT curr_items 1\r\n"), std::string::npos);
  server.Stop();
}

TEST_P(CacheServerTest, QuitClosesTheConnection) {
  CacheServer server(SmallServerConfig(GetParam()));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("get x\r\nquit\r\n");
  EXPECT_EQ(client.ReadUntil("END\r\n"), "END\r\n");
  // After quit the server closes its side; the next read sees EOF.
  EXPECT_TRUE(client.AtEof());
  server.Stop();
}

// --- The tentpole acceptance check -----------------------------------------

// Bit-exact parity: trace -> loadgen -> TCP -> parser -> per-connection
// batches -> ConcurrentS3Fifo(shards=1) must equal trace -> Simulate over
// the s3fifo policy, hit for hit. Decimal keys round-trip through KeyToId,
// a single connection preserves request order, and capacity is divisible by
// 10 so the prototype's ghost capacity (capacity - small) equals the
// simulator's (0.9 * capacity).
TEST_P(ServerSimulatorParityTest, HitCountsMatchSimulateBitExactly) {
  constexpr uint64_t kObjects = 20000;
  constexpr uint64_t kRequests = 60000;
  constexpr uint64_t kCapacity = 2000;

  // Deterministic get-only Zipf trace.
  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(97);
  std::vector<Request> reqs;
  reqs.reserve(kRequests);
  for (uint64_t i = 0; i < kRequests; ++i) {
    Request r;
    r.id = zipf.Sample(rng);
    reqs.push_back(r);
  }
  const Trace trace(std::move(reqs), "parity");

  // Reference: the simulator's s3fifo with the fingerprint ghost table.
  CacheConfig sc;
  sc.capacity = kCapacity;
  sc.params = "ghost_type=table";
  auto sim_cache = CreateCache("s3fifo", sc);
  const SimResult sim = Simulate(trace, *sim_cache);

  // Server: one worker, one shard, driven over loopback by one pipelined
  // connection.
  ServerConfig config;
  config.workers = 1;
  config.cache.capacity_objects = kCapacity;
  config.cache.value_size = 8;
  config.cache.cache_shards = 1;
  config.transport = GetParam();
  ConcurrentS3Fifo cache(config.cache);
  CacheServer server(config, &cache);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  LoadGenConfig lg;
  lg.port = server.port();
  lg.threads = 1;
  lg.connections = 1;
  lg.pipeline_depth = 32;
  lg.transport = GetParam();
  const LoadGenResult r = RunLoadGen(lg, trace);
  ASSERT_TRUE(r.ok) << r.error;

  EXPECT_EQ(r.ops, kRequests);
  EXPECT_EQ(r.gets, kRequests);
  EXPECT_EQ(r.get_hits, sim.hits);
  EXPECT_EQ(kRequests - r.get_hits, sim.misses);

  // The server's own counters agree with what the client observed.
  const ServerStats stats = server.TotalStats();
  EXPECT_EQ(stats.get_hits, r.get_hits);
  EXPECT_EQ(stats.get_misses, kRequests - r.get_hits);
  EXPECT_EQ(stats.cmd_get, kRequests);
  server.Stop();
}

// The same parity must hold when requests flow through mget multi-key
// batches of varying size — key grouping changes GetBatch call shapes but
// may not change outcomes.
TEST_P(ServerSimulatorParityTest, MultiGetGroupingPreservesOutcomes) {
  constexpr uint64_t kObjects = 5000;
  constexpr uint64_t kRequests = 20000;
  constexpr uint64_t kCapacity = 500;

  ZipfDistribution zipf(kObjects, 1.0);
  Rng rng(13);
  std::vector<uint64_t> ids;
  ids.reserve(kRequests);
  for (uint64_t i = 0; i < kRequests; ++i) {
    ids.push_back(zipf.Sample(rng));
  }

  CacheConfig sc;
  sc.capacity = kCapacity;
  sc.params = "ghost_type=table";
  auto sim_cache = CreateCache("s3fifo", sc);
  uint64_t sim_hits = 0;
  for (const uint64_t id : ids) {
    Request r;
    r.id = id;
    sim_hits += sim_cache->Get(r) ? 1 : 0;
  }

  ServerConfig config;
  config.workers = 1;
  config.cache.capacity_objects = kCapacity;
  config.cache.value_size = 8;
  config.cache.cache_shards = 1;
  config.transport = GetParam();
  CacheServer server(config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Group ids into mgets of 1..7 keys; count VALUE lines in the responses.
  // Counting by substring is sound here: every payload is a generated fill
  // of one repeated byte, which can never contain "VALUE " or "END\r\n".
  uint64_t server_hits = 0;
  Rng group_rng(5);
  size_t i = 0;
  std::string batch;
  uint64_t batch_groups = 0;
  while (i < ids.size()) {
    std::string cmd = "mget";
    const size_t group = 1 + group_rng.NextBounded(7);
    for (size_t k = 0; k < group && i < ids.size(); ++k, ++i) {
      cmd += " " + std::to_string(ids[i]);
    }
    batch += cmd + "\r\n";
    ++batch_groups;
    if (batch.size() > 16384 || i >= ids.size()) {
      client.Send(batch);
      uint64_t ends = 0;
      while (ends < batch_groups) {
        const std::string part = client.ReadUntil("END\r\n");
        for (size_t pos = 0;
             (pos = part.find("END\r\n", pos)) != std::string::npos; pos += 5) {
          ++ends;
        }
        for (size_t pos = 0;
             (pos = part.find("VALUE ", pos)) != std::string::npos; pos += 6) {
          ++server_hits;
        }
      }
      batch.clear();
      batch_groups = 0;
    }
  }
  EXPECT_EQ(server_hits, sim_hits);
  server.Stop();
}

}  // namespace
}  // namespace s3fifo
