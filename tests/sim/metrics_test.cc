#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(MissRatioReductionTest, PositiveWhenAlgoWins) {
  // FIFO 0.5 -> algo 0.25: 50% reduction.
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.25, 0.5), 0.5);
}

TEST(MissRatioReductionTest, NegativeWhenAlgoLoses) {
  // algo 0.5 vs FIFO 0.25: -(0.25/0.5) = -0.5 (paper's bounding form).
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.5, 0.25), -0.5);
}

TEST(MissRatioReductionTest, ZeroWhenEqual) {
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.3, 0.3), 0.0);
}

TEST(MissRatioReductionTest, BoundedToUnitInterval) {
  EXPECT_LE(MissRatioReduction(1.0, 0.0001), 1.0);
  EXPECT_GE(MissRatioReduction(1.0, 0.0001), -1.0);
  EXPECT_GE(MissRatioReduction(0.0001, 1.0), -1.0);
  EXPECT_LE(MissRatioReduction(0.0001, 1.0), 1.0);
}

TEST(MissRatioReductionTest, DegenerateZeros) {
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.0, 0.5), 1.0);   // algo eliminates all misses
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.5, 0.0), -1.0);  // algo strictly worse
}

TEST(PercentilesTest, OrderStatistics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const PercentileRow row = Percentiles(v);
  EXPECT_NEAR(row.p10, 10.9, 0.01);
  EXPECT_NEAR(row.p50, 50.5, 0.01);
  EXPECT_NEAR(row.p90, 90.1, 0.01);
  EXPECT_NEAR(row.mean, 50.5, 0.01);
}

TEST(PercentilesTest, EmptyInput) {
  const PercentileRow row = Percentiles({});
  EXPECT_DOUBLE_EQ(row.p50, 0.0);
  EXPECT_DOUBLE_EQ(row.mean, 0.0);
}

TEST(PercentilesTest, SingleValue) {
  const PercentileRow row = Percentiles({3.0});
  EXPECT_DOUBLE_EQ(row.p10, 3.0);
  EXPECT_DOUBLE_EQ(row.p90, 3.0);
  EXPECT_DOUBLE_EQ(row.mean, 3.0);
}

TEST(PercentilesTest, FormatRowContainsLabel) {
  const std::string s = FormatPercentileRow("s3fifo", Percentiles({0.1, 0.2}));
  EXPECT_NE(s.find("s3fifo"), std::string::npos);
  EXPECT_NE(s.find("P50"), std::string::npos);
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below one octave of sub-buckets land in exact unit buckets.
  LatencyHistogram h;
  for (uint64_t v = 0; v < 32; ++v) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.Percentile(50), 15u);
  EXPECT_EQ(h.Percentile(100), 31u);
}

TEST(LatencyHistogramTest, QuantileRelativeErrorBounded) {
  // Uniform 1..1e6: every reported quantile's bucket upper edge must be
  // within one sub-bucket (~1/32) of the true quantile.
  LatencyHistogram h;
  constexpr uint64_t kN = 1000000;
  for (uint64_t v = 1; v <= kN; ++v) {
    h.Add(v);
  }
  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * kN;
    const double reported = static_cast<double>(h.Percentile(p));
    EXPECT_GE(reported, exact * (1.0 - 1.0 / 32));
    EXPECT_LE(reported, exact * (1.0 + 2.0 / 32) + 1);
  }
}

TEST(LatencyHistogramTest, HugeValuesDoNotSaturate) {
  LatencyHistogram h;
  h.Add(~uint64_t{0});
  h.Add(uint64_t{1} << 63);
  h.Add(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.Percentile(0), 3u);
  EXPECT_EQ(h.Percentile(100), ~uint64_t{0});
}

TEST(LatencyHistogramTest, MergeEqualsCombinedStream) {
  // Two workers recording halves of a stream, merged, must answer like one
  // histogram that saw everything.
  LatencyHistogram a, b, combined;
  for (uint64_t v = 0; v < 10000; ++v) {
    const uint64_t sample = (v * 2654435761u) % 500000;
    ((v % 2 == 0) ? a : b).Add(sample);
    combined.Add(sample);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Add(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  h.Add(7);
  EXPECT_EQ(h.Percentile(50), 7u);
}

TEST(LatencyHistogramTest, FormatLatencyUsMentionsPercentiles) {
  LatencyHistogram h;
  h.Add(1500);  // 1.5us
  const std::string s = h.FormatLatencyUs("svc");
  EXPECT_NE(s.find("svc"), std::string::npos);
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p999"), std::string::npos);
}

}  // namespace
}  // namespace s3fifo
