#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(MissRatioReductionTest, PositiveWhenAlgoWins) {
  // FIFO 0.5 -> algo 0.25: 50% reduction.
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.25, 0.5), 0.5);
}

TEST(MissRatioReductionTest, NegativeWhenAlgoLoses) {
  // algo 0.5 vs FIFO 0.25: -(0.25/0.5) = -0.5 (paper's bounding form).
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.5, 0.25), -0.5);
}

TEST(MissRatioReductionTest, ZeroWhenEqual) {
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.3, 0.3), 0.0);
}

TEST(MissRatioReductionTest, BoundedToUnitInterval) {
  EXPECT_LE(MissRatioReduction(1.0, 0.0001), 1.0);
  EXPECT_GE(MissRatioReduction(1.0, 0.0001), -1.0);
  EXPECT_GE(MissRatioReduction(0.0001, 1.0), -1.0);
  EXPECT_LE(MissRatioReduction(0.0001, 1.0), 1.0);
}

TEST(MissRatioReductionTest, DegenerateZeros) {
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.0, 0.5), 1.0);   // algo eliminates all misses
  EXPECT_DOUBLE_EQ(MissRatioReduction(0.5, 0.0), -1.0);  // algo strictly worse
}

TEST(PercentilesTest, OrderStatistics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const PercentileRow row = Percentiles(v);
  EXPECT_NEAR(row.p10, 10.9, 0.01);
  EXPECT_NEAR(row.p50, 50.5, 0.01);
  EXPECT_NEAR(row.p90, 90.1, 0.01);
  EXPECT_NEAR(row.mean, 50.5, 0.01);
}

TEST(PercentilesTest, EmptyInput) {
  const PercentileRow row = Percentiles({});
  EXPECT_DOUBLE_EQ(row.p50, 0.0);
  EXPECT_DOUBLE_EQ(row.mean, 0.0);
}

TEST(PercentilesTest, SingleValue) {
  const PercentileRow row = Percentiles({3.0});
  EXPECT_DOUBLE_EQ(row.p10, 3.0);
  EXPECT_DOUBLE_EQ(row.p90, 3.0);
  EXPECT_DOUBLE_EQ(row.mean, 3.0);
}

TEST(PercentilesTest, FormatRowContainsLabel) {
  const std::string s = FormatPercentileRow("s3fifo", Percentiles({0.1, 0.2}));
  EXPECT_NE(s.find("s3fifo"), std::string::npos);
  EXPECT_NE(s.find("P50"), std::string::npos);
}

}  // namespace
}  // namespace s3fifo
