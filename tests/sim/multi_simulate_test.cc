#include "src/sim/multi_sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_engine.h"
#include "src/trace/next_access.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// A mixed get/set/delete trace exercising every SimResult field (deletes are
// unmeasured, sizes vary so byte counters diverge from request counters).
Trace MakeMixedTrace() {
  ZipfWorkloadConfig cfg;
  cfg.num_objects = 2000;
  cfg.num_requests = 30000;
  cfg.alpha = 1.0;
  cfg.write_fraction = 0.1;
  cfg.delete_fraction = 0.05;
  cfg.size_sigma = 1.0;
  cfg.seed = 9;
  Trace trace = GenerateZipfTrace(cfg);
  AnnotateNextAccess(trace);  // so Belady participates too
  return trace;
}

void ExpectSameResult(const SimResult& a, const SimResult& b, const std::string& what) {
  EXPECT_EQ(a.requests, b.requests) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.bytes_requested, b.bytes_requested) << what;
  EXPECT_EQ(a.bytes_missed, b.bytes_missed) << what;
}

TEST(MultiSimulateTest, BitIdenticalToSequentialSimulateForEveryPolicy) {
  const Trace trace = MakeMixedTrace();
  CacheConfig config;
  config.capacity = 200;

  std::vector<std::unique_ptr<Cache>> caches;
  for (const std::string& name : AllCacheNames()) {
    caches.push_back(CreateCache(name, config));
  }
  const std::vector<SimResult> multi = MultiSimulate(trace, caches);
  ASSERT_EQ(multi.size(), caches.size());

  for (size_t i = 0; i < AllCacheNames().size(); ++i) {
    auto fresh = CreateCache(AllCacheNames()[i], config);
    const SimResult expected = Simulate(trace, *fresh);
    ExpectSameResult(multi[i], expected, AllCacheNames()[i]);
    EXPECT_GT(multi[i].requests, 0u) << AllCacheNames()[i];
  }
}

TEST(MultiSimulateTest, HonorsWarmup) {
  const Trace trace = MakeMixedTrace();
  CacheConfig config;
  config.capacity = 200;
  SimOptions options;
  options.warmup_requests = 10000;

  std::vector<std::unique_ptr<Cache>> caches;
  caches.push_back(CreateCache("s3fifo", config));
  caches.push_back(CreateCache("lru", config));
  const std::vector<SimResult> multi = MultiSimulate(trace, caches, options);

  for (size_t i = 0; i < caches.size(); ++i) {
    auto fresh = CreateCache(i == 0 ? "s3fifo" : "lru", config);
    ExpectSameResult(multi[i], Simulate(trace, *fresh, options), "warmup");
  }
  EXPECT_LT(multi[0].requests, trace.size());
}

TEST(MultiSimulateTest, ThrowsOnUnannotatedBelady) {
  ZipfWorkloadConfig cfg;
  cfg.num_objects = 100;
  cfg.num_requests = 1000;
  Trace trace = GenerateZipfTrace(cfg);  // NOT annotated
  CacheConfig config;
  config.capacity = 50;
  std::vector<std::unique_ptr<Cache>> caches;
  caches.push_back(CreateCache("belady", config));
  EXPECT_THROW(MultiSimulate(trace, caches), std::invalid_argument);
}

TEST(MultiSimulateTest, EmptyCacheSetYieldsNoResults) {
  const Trace trace = MakeMixedTrace();
  const std::vector<std::unique_ptr<Cache>> none;
  EXPECT_TRUE(MultiSimulate(trace, none).empty());
}

// ---- SweepEngine ----

std::vector<SweepUnit> MakeUnits(const SharedTracePtr& shared,
                                 const std::vector<std::string>& policies) {
  std::vector<SweepUnit> units;
  for (const uint64_t capacity : {100, 200, 400}) {
    SweepUnit unit;
    unit.label = "cap" + std::to_string(capacity);
    unit.trace = shared;
    unit.make_caches = [capacity, policies](const Trace&) {
      CacheConfig config;
      config.capacity = capacity;
      std::vector<std::unique_ptr<Cache>> caches;
      for (const std::string& p : policies) {
        caches.push_back(CreateCache(p, config));
      }
      return caches;
    };
    units.push_back(std::move(unit));
  }
  return units;
}

TEST(SweepEngineTest, MatchesSequentialSimulateAndIsThreadCountInvariant) {
  const std::vector<std::string> policies = {"fifo", "lru", "s3fifo", "sieve", "clock"};
  const Trace reference = MakeMixedTrace();

  std::atomic<int> generations{0};
  auto make_shared_trace = [&generations] {
    return SweepEngine::MakeSharedTrace([&generations] {
      ++generations;
      return MakeMixedTrace();
    });
  };

  std::vector<std::vector<SweepUnitResult>> per_thread_count;
  for (const unsigned threads : {1u, 8u}) {
    RunnerOptions options;
    options.num_threads = threads;
    SweepEngine engine(options);
    const SharedTracePtr shared = make_shared_trace();
    const std::vector<SweepUnit> units = MakeUnits(shared, policies);
    std::vector<SweepUnitResult> results = engine.Run(units);
    ASSERT_EQ(results.size(), units.size());
    EXPECT_EQ(engine.last_simulated_requests(),
              reference.size() * policies.size() * units.size());
    per_thread_count.push_back(std::move(results));
  }

  // The shared trace is generated once per engine run, not once per unit.
  EXPECT_EQ(generations.load(), 2);

  // Thread-count invariance: threads=1 and threads=8 agree bit-for-bit.
  const auto& seq = per_thread_count[0];
  const auto& par = per_thread_count[1];
  for (size_t u = 0; u < seq.size(); ++u) {
    EXPECT_TRUE(seq[u].ok) << seq[u].error;
    EXPECT_TRUE(par[u].ok) << par[u].error;
    EXPECT_EQ(seq[u].label, par[u].label);
    ASSERT_EQ(seq[u].results.size(), policies.size());
    ASSERT_EQ(par[u].results.size(), policies.size());
    for (size_t i = 0; i < policies.size(); ++i) {
      ExpectSameResult(seq[u].results[i], par[u].results[i],
                       seq[u].label + "/" + policies[i]);
    }
  }

  // Engine output equals a plain sequential Simulate per (unit, policy).
  const uint64_t capacities[] = {100, 200, 400};
  for (size_t u = 0; u < seq.size(); ++u) {
    CacheConfig config;
    config.capacity = capacities[u];
    for (size_t i = 0; i < policies.size(); ++i) {
      auto fresh = CreateCache(policies[i], config);
      ExpectSameResult(seq[u].results[i], Simulate(reference, *fresh),
                       seq[u].label + "/" + policies[i] + " vs Simulate");
    }
  }
}

TEST(SweepEngineTest, ReportsFailedUnitsWithoutPoisoningOthers) {
  RunnerOptions options;
  options.num_threads = 2;
  options.max_retries = 1;
  SweepEngine engine(options);

  SharedTracePtr shared = SweepEngine::MakeSharedTrace([] {
    ZipfWorkloadConfig cfg;
    cfg.num_objects = 100;
    cfg.num_requests = 2000;
    return GenerateZipfTrace(cfg);
  });

  std::vector<SweepUnit> units;
  SweepUnit good;
  good.label = "good";
  good.trace = shared;
  good.make_caches = [](const Trace&) {
    CacheConfig config;
    config.capacity = 50;
    std::vector<std::unique_ptr<Cache>> caches;
    caches.push_back(CreateCache("lru", config));
    return caches;
  };
  units.push_back(std::move(good));

  SweepUnit bad;
  bad.label = "bad";
  bad.trace = shared;
  bad.make_caches = [](const Trace&) -> std::vector<std::unique_ptr<Cache>> {
    throw std::runtime_error("boom");
  };
  units.push_back(std::move(bad));

  const std::vector<SweepUnitResult> results = engine.Run(units);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].results.size(), 1u);
  EXPECT_GT(results[0].results[0].requests, 0u);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].attempts, 2u);  // initial try + one retry
  EXPECT_NE(results[1].error.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace s3fifo
