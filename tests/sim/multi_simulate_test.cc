#include "src/sim/multi_sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "src/core/cache_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_engine.h"
#include "src/trace/next_access.h"
#include "src/trace/trace_cache.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

// A mixed get/set/delete trace exercising every SimResult field (deletes are
// unmeasured, sizes vary so byte counters diverge from request counters).
Trace MakeMixedTrace() {
  ZipfWorkloadConfig cfg;
  cfg.num_objects = 2000;
  cfg.num_requests = 30000;
  cfg.alpha = 1.0;
  cfg.write_fraction = 0.1;
  cfg.delete_fraction = 0.05;
  cfg.size_sigma = 1.0;
  cfg.seed = 9;
  Trace trace = GenerateZipfTrace(cfg);
  AnnotateNextAccess(trace);  // so Belady participates too
  return trace;
}

void ExpectSameResult(const SimResult& a, const SimResult& b, const std::string& what) {
  EXPECT_EQ(a.requests, b.requests) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.bytes_requested, b.bytes_requested) << what;
  EXPECT_EQ(a.bytes_missed, b.bytes_missed) << what;
}

TEST(MultiSimulateTest, BitIdenticalToSequentialSimulateForEveryPolicy) {
  const Trace trace = MakeMixedTrace();
  CacheConfig config;
  config.capacity = 200;

  std::vector<std::unique_ptr<Cache>> caches;
  for (const std::string& name : AllCacheNames()) {
    caches.push_back(CreateCache(name, config));
  }
  const std::vector<SimResult> multi = MultiSimulate(trace, caches);
  ASSERT_EQ(multi.size(), caches.size());

  for (size_t i = 0; i < AllCacheNames().size(); ++i) {
    auto fresh = CreateCache(AllCacheNames()[i], config);
    const SimResult expected = Simulate(trace, *fresh);
    ExpectSameResult(multi[i], expected, AllCacheNames()[i]);
    EXPECT_GT(multi[i].requests, 0u) << AllCacheNames()[i];
  }
}

TEST(MultiSimulateTest, HonorsWarmup) {
  const Trace trace = MakeMixedTrace();
  CacheConfig config;
  config.capacity = 200;
  SimOptions options;
  options.warmup_requests = 10000;

  std::vector<std::unique_ptr<Cache>> caches;
  caches.push_back(CreateCache("s3fifo", config));
  caches.push_back(CreateCache("lru", config));
  const std::vector<SimResult> multi = MultiSimulate(trace, caches, options);

  for (size_t i = 0; i < caches.size(); ++i) {
    auto fresh = CreateCache(i == 0 ? "s3fifo" : "lru", config);
    ExpectSameResult(multi[i], Simulate(trace, *fresh, options), "warmup");
  }
  EXPECT_LT(multi[0].requests, trace.size());
}

TEST(MultiSimulateTest, ThrowsOnUnannotatedBelady) {
  ZipfWorkloadConfig cfg;
  cfg.num_objects = 100;
  cfg.num_requests = 1000;
  Trace trace = GenerateZipfTrace(cfg);  // NOT annotated
  CacheConfig config;
  config.capacity = 50;
  std::vector<std::unique_ptr<Cache>> caches;
  caches.push_back(CreateCache("belady", config));
  EXPECT_THROW(MultiSimulate(trace, caches), std::invalid_argument);
}

TEST(MultiSimulateTest, EmptyCacheSetYieldsNoResults) {
  const Trace trace = MakeMixedTrace();
  const std::vector<std::unique_ptr<Cache>> none;
  EXPECT_TRUE(MultiSimulate(trace, none).empty());
}

// Prefetching is a pure hint: any distance (including the scalar reference
// loop at 0) must produce bit-identical results for every policy.
TEST(MultiSimulateTest, PrefetchDistanceNeverChangesResults) {
  const Trace trace = MakeMixedTrace();
  CacheConfig config;
  config.capacity = 200;

  SimOptions scalar;
  scalar.prefetch_distance = 0;
  std::map<std::string, SimResult> reference;
  for (const std::string& name : AllCacheNames()) {
    auto cache = CreateCache(name, config);
    reference[name] = Simulate(trace, *cache, scalar);
  }

  for (const uint32_t distance : {1u, 8u, 16u, 64u, 1u << 20}) {
    SimOptions batched;
    batched.prefetch_distance = distance;
    for (const std::string& name : AllCacheNames()) {
      auto cache = CreateCache(name, config);
      ExpectSameResult(Simulate(trace, *cache, batched), reference[name],
                       name + "@distance=" + std::to_string(distance));
    }
    std::vector<std::unique_ptr<Cache>> caches;
    for (const std::string& name : AllCacheNames()) {
      caches.push_back(CreateCache(name, config));
    }
    const std::vector<SimResult> multi = MultiSimulate(trace, caches, batched);
    for (size_t i = 0; i < AllCacheNames().size(); ++i) {
      ExpectSameResult(multi[i], reference[AllCacheNames()[i]],
                       AllCacheNames()[i] + "/multi@distance=" + std::to_string(distance));
    }
  }
}

// The mmap'd columnar backing must be indistinguishable from the heap trace
// in simulation output, for both the scalar and prefetch-batched loops.
TEST(MultiSimulateTest, MmapAndHeapBackingsSimulateIdentically) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "s3fifo_multi_sim_cache_test").string();
  std::filesystem::remove_all(dir);
  const Trace heap_trace = MakeMixedTrace();
  TraceCache cache_store(dir);
  const TraceView mmap_view =
      cache_store.GetOrGenerate(TraceSpec{"multi-sim", "mixed"}, [] { return MakeMixedTrace(); });
  ASSERT_EQ(mmap_view.AsRequests(), nullptr);
  ASSERT_EQ(mmap_view.ComputeFingerprint(), heap_trace.Fingerprint());

  CacheConfig config;
  config.capacity = 200;
  for (const uint32_t distance : {0u, 16u}) {
    SimOptions options;
    options.prefetch_distance = distance;
    for (const std::string& name : AllCacheNames()) {
      auto heap_cache = CreateCache(name, config);
      auto mmap_cache = CreateCache(name, config);
      ExpectSameResult(Simulate(TraceView::Borrow(heap_trace), *heap_cache, options),
                       Simulate(mmap_view, *mmap_cache, options),
                       name + "/mmap-vs-heap@" + std::to_string(distance));
    }

    std::vector<std::unique_ptr<Cache>> heap_caches, mmap_caches;
    for (const std::string& name : AllCacheNames()) {
      heap_caches.push_back(CreateCache(name, config));
      mmap_caches.push_back(CreateCache(name, config));
    }
    const std::vector<SimResult> heap_results = MultiSimulate(heap_trace, heap_caches, options);
    const std::vector<SimResult> mmap_results = MultiSimulate(mmap_view, mmap_caches, options);
    for (size_t i = 0; i < AllCacheNames().size(); ++i) {
      ExpectSameResult(heap_results[i], mmap_results[i],
                       AllCacheNames()[i] + "/multi-mmap@" + std::to_string(distance));
    }
  }
  std::filesystem::remove_all(dir);
}

// ---- SweepEngine ----

std::vector<SweepUnit> MakeUnits(const SharedTracePtr& shared,
                                 const std::vector<std::string>& policies) {
  std::vector<SweepUnit> units;
  for (const uint64_t capacity : {100, 200, 400}) {
    SweepUnit unit;
    unit.label = "cap" + std::to_string(capacity);
    unit.trace = shared;
    unit.make_caches = [capacity, policies](const TraceView&) {
      CacheConfig config;
      config.capacity = capacity;
      std::vector<std::unique_ptr<Cache>> caches;
      for (const std::string& p : policies) {
        caches.push_back(CreateCache(p, config));
      }
      return caches;
    };
    units.push_back(std::move(unit));
  }
  return units;
}

TEST(SweepEngineTest, MatchesSequentialSimulateAndIsThreadCountInvariant) {
  const std::vector<std::string> policies = {"fifo", "lru", "s3fifo", "sieve", "clock"};
  const Trace reference = MakeMixedTrace();

  std::atomic<int> generations{0};
  auto make_shared_trace = [&generations] {
    return SweepEngine::MakeSharedTrace([&generations] {
      ++generations;
      return MakeMixedTrace();
    });
  };

  std::vector<std::vector<SweepUnitResult>> per_thread_count;
  for (const unsigned threads : {1u, 8u}) {
    RunnerOptions options;
    options.num_threads = threads;
    SweepEngine engine(options);
    const SharedTracePtr shared = make_shared_trace();
    const std::vector<SweepUnit> units = MakeUnits(shared, policies);
    std::vector<SweepUnitResult> results = engine.Run(units);
    ASSERT_EQ(results.size(), units.size());
    EXPECT_EQ(engine.last_simulated_requests(),
              reference.size() * policies.size() * units.size());
    per_thread_count.push_back(std::move(results));
  }

  // The shared trace is generated once per engine run, not once per unit.
  EXPECT_EQ(generations.load(), 2);

  // Thread-count invariance: threads=1 and threads=8 agree bit-for-bit.
  const auto& seq = per_thread_count[0];
  const auto& par = per_thread_count[1];
  for (size_t u = 0; u < seq.size(); ++u) {
    EXPECT_TRUE(seq[u].ok) << seq[u].error;
    EXPECT_TRUE(par[u].ok) << par[u].error;
    EXPECT_EQ(seq[u].label, par[u].label);
    ASSERT_EQ(seq[u].results.size(), policies.size());
    ASSERT_EQ(par[u].results.size(), policies.size());
    for (size_t i = 0; i < policies.size(); ++i) {
      ExpectSameResult(seq[u].results[i], par[u].results[i],
                       seq[u].label + "/" + policies[i]);
    }
  }

  // Engine output equals a plain sequential Simulate per (unit, policy).
  const uint64_t capacities[] = {100, 200, 400};
  for (size_t u = 0; u < seq.size(); ++u) {
    CacheConfig config;
    config.capacity = capacities[u];
    for (size_t i = 0; i < policies.size(); ++i) {
      auto fresh = CreateCache(policies[i], config);
      ExpectSameResult(seq[u].results[i], Simulate(reference, *fresh),
                       seq[u].label + "/" + policies[i] + " vs Simulate");
    }
  }
}

TEST(SweepEngineTest, ReportsFailedUnitsWithoutPoisoningOthers) {
  RunnerOptions options;
  options.num_threads = 2;
  options.max_retries = 1;
  SweepEngine engine(options);

  SharedTracePtr shared = SweepEngine::MakeSharedTrace([] {
    ZipfWorkloadConfig cfg;
    cfg.num_objects = 100;
    cfg.num_requests = 2000;
    return GenerateZipfTrace(cfg);
  });

  std::vector<SweepUnit> units;
  SweepUnit good;
  good.label = "good";
  good.trace = shared;
  good.make_caches = [](const TraceView&) {
    CacheConfig config;
    config.capacity = 50;
    std::vector<std::unique_ptr<Cache>> caches;
    caches.push_back(CreateCache("lru", config));
    return caches;
  };
  units.push_back(std::move(good));

  SweepUnit bad;
  bad.label = "bad";
  bad.trace = shared;
  bad.make_caches = [](const TraceView&) -> std::vector<std::unique_ptr<Cache>> {
    throw std::runtime_error("boom");
  };
  units.push_back(std::move(bad));

  const std::vector<SweepUnitResult> results = engine.Run(units);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].results.size(), 1u);
  EXPECT_GT(results[0].results[0].requests, 0u);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].attempts, 2u);  // initial try + one retry
  EXPECT_NE(results[1].error.find("boom"), std::string::npos);
}

// Cache-backed (mmap) and heap-backed sweeps must agree bit-for-bit at every
// thread count — the trace backing is invisible to the miss-ratio output.
TEST(SweepEngineTest, TraceCacheBackingIsThreadCountAndBackingInvariant) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "s3fifo_sweep_cache_test").string();
  std::filesystem::remove_all(dir);
  TraceCache trace_cache(dir);
  const DatasetProfile& profile = DatasetByName("msr");
  const double scale = 0.02;
  const std::vector<std::string> policies = {"fifo", "lru", "s3fifo"};

  auto run = [&](TraceCache* cache, unsigned threads) {
    RunnerOptions options;
    options.num_threads = threads;
    SweepEngine engine(options);
    std::vector<SweepUnit> units;
    const SharedTracePtr shared =
        SweepEngine::MakeSharedDatasetTrace(profile, 0, scale, cache);
    for (const uint64_t capacity : {60, 200}) {
      SweepUnit unit;
      unit.label = "cap" + std::to_string(capacity);
      unit.trace = shared;
      unit.make_caches = [capacity, &policies](const TraceView&) {
        CacheConfig config;
        config.capacity = capacity;
        std::vector<std::unique_ptr<Cache>> caches;
        for (const std::string& p : policies) {
          caches.push_back(CreateCache(p, config));
        }
        return caches;
      };
      units.push_back(std::move(unit));
    }
    return engine.Run(units);
  };

  const std::vector<SweepUnitResult> heap = run(nullptr, 1);
  for (const unsigned threads : {1u, 4u}) {
    const std::vector<SweepUnitResult> cached = run(&trace_cache, threads);
    ASSERT_EQ(cached.size(), heap.size());
    for (size_t u = 0; u < heap.size(); ++u) {
      ASSERT_TRUE(heap[u].ok) << heap[u].error;
      ASSERT_TRUE(cached[u].ok) << cached[u].error;
      ASSERT_EQ(cached[u].results.size(), heap[u].results.size());
      for (size_t i = 0; i < heap[u].results.size(); ++i) {
        ExpectSameResult(cached[u].results[i], heap[u].results[i],
                         heap[u].label + "/" + policies[i] + "@threads=" +
                             std::to_string(threads));
      }
    }
  }
  // Everything after the first resolution was served from cache.
  EXPECT_EQ(trace_cache.misses(), 1u);
  EXPECT_GE(trace_cache.hits(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace s3fifo
