#include "src/sim/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/core/cache_factory.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

SimJob MakeJob(const std::string& label, const std::string& policy, uint64_t seed) {
  SimJob job;
  job.label = label;
  job.make_trace = [seed] {
    ZipfWorkloadConfig c;
    c.num_objects = 200;
    c.num_requests = 5000;
    c.alpha = 1.0;
    c.seed = seed;
    return GenerateZipfTrace(c);
  };
  job.make_cache = [policy] {
    CacheConfig config;
    config.capacity = 50;
    return CreateCache(policy, config);
  };
  return job;
}

TEST(RunnerTest, RunsAllJobs) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(MakeJob("job" + std::to_string(i), i % 2 ? "lru" : "s3fifo", i));
  }
  const auto results = RunJobs(jobs, {.num_threads = 4, .max_retries = 0});
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_GT(r.result.requests, 0u);
  }
}

TEST(RunnerTest, ResultsAreIndexAligned) {
  std::vector<SimJob> jobs = {MakeJob("a", "lru", 1), MakeJob("b", "fifo", 2)};
  const auto results = RunJobs(jobs, {.num_threads = 2, .max_retries = 0});
  EXPECT_EQ(results[0].label, "a");
  EXPECT_EQ(results[1].label, "b");
}

TEST(RunnerTest, FaultIsolationAndRetry) {
  // A job that fails twice then succeeds: the runner's retry absorbs the
  // transient fault without affecting neighbours.
  auto flaky_counter = std::make_shared<std::atomic<int>>(0);
  SimJob flaky = MakeJob("flaky", "lru", 3);
  auto inner = flaky.make_trace;
  flaky.make_trace = [flaky_counter, inner] {
    if (flaky_counter->fetch_add(1) < 2) {
      throw std::runtime_error("simulated node failure");
    }
    return inner();
  };
  std::vector<SimJob> jobs = {MakeJob("ok", "lru", 4), flaky};
  const auto results = RunJobs(jobs, {.num_threads = 2, .max_retries = 2});
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[1].attempts, 3u);
}

TEST(RunnerTest, PermanentFailureReported) {
  SimJob doomed = MakeJob("doomed", "lru", 5);
  doomed.make_cache = []() -> std::unique_ptr<Cache> {
    throw std::runtime_error("always fails");
  };
  const auto results = RunJobs({doomed}, {.num_threads = 1, .max_retries = 1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_NE(results[0].error.find("always fails"), std::string::npos);
}

TEST(RunnerTest, DeterministicAcrossThreadCounts) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob("j" + std::to_string(i), "s3fifo", i + 10));
  }
  const auto seq = RunJobs(jobs, {.num_threads = 1, .max_retries = 0});
  const auto par = RunJobs(jobs, {.num_threads = 4, .max_retries = 0});
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(seq[i].result.hits, par[i].result.hits) << i;
  }
}

}  // namespace
}  // namespace s3fifo
