#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/core/cache_factory.h"
#include "src/trace/next_access.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace SmallTrace() {
  std::vector<Request> reqs;
  for (uint64_t id : {1, 2, 1, 3, 1, 2}) {
    Request r;
    r.id = id;
    r.size = 100;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

TEST(SimulatorTest, CountsHitsAndMisses) {
  CacheConfig config;
  config.capacity = 10;
  auto cache = CreateCache("lru", config);
  const SimResult r = Simulate(SmallTrace(), *cache);
  EXPECT_EQ(r.requests, 6u);
  EXPECT_EQ(r.misses, 3u);  // 1, 2, 3 cold
  EXPECT_EQ(r.hits, 3u);
  EXPECT_DOUBLE_EQ(r.MissRatio(), 0.5);
}

TEST(SimulatorTest, ByteMetrics) {
  CacheConfig config;
  config.capacity = 10;
  auto cache = CreateCache("lru", config);
  const SimResult r = Simulate(SmallTrace(), *cache);
  EXPECT_EQ(r.bytes_requested, 600u);
  EXPECT_EQ(r.bytes_missed, 300u);
  EXPECT_DOUBLE_EQ(r.ByteMissRatio(), 0.5);
}

TEST(SimulatorTest, WarmupExcludedFromMetrics) {
  CacheConfig config;
  config.capacity = 10;
  auto cache = CreateCache("lru", config);
  SimOptions options;
  options.warmup_requests = 3;
  const SimResult r = Simulate(SmallTrace(), *cache, options);
  EXPECT_EQ(r.requests, 3u);  // indices 3,4,5
  EXPECT_EQ(r.misses, 1u);    // id 3 cold at index 3
  EXPECT_EQ(r.hits, 2u);
}

TEST(SimulatorTest, DeletesAreNotCounted) {
  std::vector<Request> reqs(3);
  reqs[0].id = 1;
  reqs[1].id = 1;
  reqs[1].op = OpType::kDelete;
  reqs[2].id = 1;
  Trace t(std::move(reqs));
  CacheConfig config;
  config.capacity = 4;
  auto cache = CreateCache("lru", config);
  const SimResult r = Simulate(t, *cache);
  EXPECT_EQ(r.requests, 2u);
  EXPECT_EQ(r.misses, 2u);  // delete purged id 1 in between
}

TEST(SimulatorTest, EmptyTrace) {
  CacheConfig config;
  config.capacity = 4;
  auto cache = CreateCache("fifo", config);
  const SimResult r = Simulate(Trace(), *cache);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_DOUBLE_EQ(r.MissRatio(), 0.0);
}

TEST(SimulatorTest, BeladyWithoutAnnotationThrows) {
  CacheConfig config;
  config.capacity = 4;
  auto cache = CreateCache("belady", config);
  Trace t = SmallTrace();
  EXPECT_THROW(Simulate(t, *cache), std::invalid_argument);
  AnnotateNextAccess(t);
  EXPECT_NO_THROW(Simulate(t, *cache));
}

TEST(SimulatorTest, ZeroCapacityConfigThrows) {
  CacheConfig config;
  config.capacity = 0;
  EXPECT_THROW(CreateCache("lru", config), std::invalid_argument);
}

TEST(SimulatorTest, UnknownPolicyThrows) {
  CacheConfig config;
  config.capacity = 4;
  EXPECT_THROW(CreateCache("no-such-policy", config), std::invalid_argument);
}

TEST(SimulatorTest, LargerCacheNeverHurtsLru) {
  // LRU has the inclusion property: miss count is monotone in cache size.
  ZipfWorkloadConfig zc;
  zc.num_objects = 1000;
  zc.num_requests = 30000;
  zc.alpha = 0.9;
  zc.seed = 13;
  Trace t = GenerateZipfTrace(zc);
  uint64_t prev_misses = ~0ULL;
  for (uint64_t cap : {25, 50, 100, 200, 400}) {
    CacheConfig config;
    config.capacity = cap;
    auto cache = CreateCache("lru", config);
    const SimResult r = Simulate(t, *cache);
    EXPECT_LE(r.misses, prev_misses) << "LRU inclusion property violated at " << cap;
    prev_misses = r.misses;
  }
}

}  // namespace
}  // namespace s3fifo
