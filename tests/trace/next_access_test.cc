#include "src/trace/next_access.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

Trace MakeTrace(std::vector<uint64_t> ids) {
  std::vector<Request> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    Request r;
    r.id = ids[i];
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

TEST(NextAccessTest, LinksSequentialReuses) {
  Trace t = MakeTrace({1, 2, 1, 2, 1});
  AnnotateNextAccess(t);
  EXPECT_TRUE(t.annotated());
  EXPECT_EQ(t[0].next_access, 2u);
  EXPECT_EQ(t[1].next_access, 3u);
  EXPECT_EQ(t[2].next_access, 4u);
  EXPECT_EQ(t[3].next_access, kNeverAccessed);
  EXPECT_EQ(t[4].next_access, kNeverAccessed);
}

TEST(NextAccessTest, OneHitWondersNeverAccessed) {
  Trace t = MakeTrace({1, 2, 3});
  AnnotateNextAccess(t);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t[i].next_access, kNeverAccessed);
  }
}

TEST(NextAccessTest, EmptyTrace) {
  Trace t;
  AnnotateNextAccess(t);
  EXPECT_TRUE(t.annotated());
}

TEST(NextAccessTest, ChainIsConsistent) {
  // Following next_access pointers for an id must enumerate exactly its
  // requests in order.
  Trace t = MakeTrace({5, 1, 5, 2, 5, 1, 5});
  AnnotateNextAccess(t);
  size_t i = 0;  // first request of id 5
  std::vector<size_t> chain;
  while (i != kNeverAccessed) {
    chain.push_back(i);
    ASSERT_EQ(t[i].id, 5u);
    i = t[i].next_access == kNeverAccessed ? kNeverAccessed
                                           : static_cast<size_t>(t[i].next_access);
  }
  EXPECT_EQ(chain, (std::vector<size_t>{0, 2, 4, 6}));
}

}  // namespace
}  // namespace s3fifo
