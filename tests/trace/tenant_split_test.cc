#include "src/trace/tenant_split.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

Trace MultiTenant() {
  std::vector<Request> reqs;
  const uint32_t tenants[] = {0, 1, 0, 2, 1, 0, 2, 2};
  for (size_t i = 0; i < 8; ++i) {
    Request r;
    r.id = 100 + i;
    r.tenant = tenants[i];
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs), "mt");
}

TEST(TenantSplitTest, OneTracePerTenant) {
  const auto parts = SplitByTenant(MultiTenant());
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 3u);  // tenant 0
  EXPECT_EQ(parts[1].size(), 2u);  // tenant 1
  EXPECT_EQ(parts[2].size(), 3u);  // tenant 2
}

TEST(TenantSplitTest, OrderPreservedWithinTenant) {
  const auto parts = SplitByTenant(MultiTenant());
  for (const Trace& part : parts) {
    for (size_t i = 1; i < part.size(); ++i) {
      ASSERT_LT(part[i - 1].time, part[i].time);
    }
  }
}

TEST(TenantSplitTest, RequestConservation) {
  Trace t = MultiTenant();
  const auto parts = SplitByTenant(t);
  size_t total = 0;
  for (const Trace& part : parts) {
    total += part.size();
  }
  EXPECT_EQ(total, t.size());
}

TEST(TenantSplitTest, SingleTenantTraceYieldsOnePart) {
  ZipfWorkloadConfig c;
  c.num_objects = 100;
  c.num_requests = 1000;
  Trace t = GenerateZipfTrace(c);
  EXPECT_EQ(SplitByTenant(t).size(), 1u);
}

TEST(TenantSplitTest, HashAssignmentIsPerObject) {
  ZipfWorkloadConfig c;
  c.num_objects = 500;
  c.num_requests = 10000;
  c.seed = 3;
  Trace t = AssignTenantsByIdHash(GenerateZipfTrace(c), 4);
  // Every request of an object carries the same tenant.
  std::unordered_map<uint64_t, uint32_t> tenant_of;
  for (const Request& r : t.requests()) {
    auto [it, inserted] = tenant_of.emplace(r.id, r.tenant);
    if (!inserted) {
      ASSERT_EQ(it->second, r.tenant);
    }
  }
  // And all four tenants are used.
  std::unordered_set<uint32_t> used;
  for (const auto& [id, tenant] : tenant_of) {
    used.insert(tenant);
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(TenantSplitTest, SplitAfterAssignRoundTrips) {
  ZipfWorkloadConfig c;
  c.num_objects = 300;
  c.num_requests = 5000;
  c.seed = 9;
  Trace t = AssignTenantsByIdHash(GenerateZipfTrace(c), 3);
  const auto parts = SplitByTenant(t);
  EXPECT_EQ(parts.size(), 3u);
  // Objects do not leak across tenants.
  std::unordered_map<uint64_t, size_t> part_of;
  for (size_t p = 0; p < parts.size(); ++p) {
    for (const Request& r : parts[p].requests()) {
      auto [it, inserted] = part_of.emplace(r.id, p);
      ASSERT_EQ(it->second, p);
    }
  }
}

}  // namespace
}  // namespace s3fifo
