#include "src/trace/trace_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/trace/trace_format.h"
#include "src/trace/trace_io.h"
#include "src/workload/dataset_profiles.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

class TraceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "s3fifo_trace_cache_test").string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Trace MakeTrace(uint64_t seed = 5, bool annotate = false) {
    ZipfWorkloadConfig cfg;
    cfg.num_objects = 500;
    cfg.num_requests = 6000;
    cfg.write_fraction = 0.1;
    cfg.delete_fraction = 0.03;
    cfg.size_sigma = 0.8;
    cfg.seed = seed;
    Trace t = GenerateZipfTrace(cfg);
    t.set_name("cache-test/" + std::to_string(seed));
    if (annotate) {
      uint64_t i = 0;
      for (Request& r : t.mutable_requests()) {
        r.tenant = static_cast<uint32_t>(i % 5);
        r.next_access = i % 4 == 0 ? kNeverAccessed : i + 2;
        ++i;
      }
      t.set_annotated(true);
    }
    return t;
  }

  static TraceSpec Spec(const std::string& detail) { return TraceSpec{"unit", detail}; }

  // The on-disk path GetOrGenerate(spec) resolves to.
  std::string FileFor(const TraceSpec& spec) const {
    return dir_ + "/" + spec.CacheKey() + ".s3ft";
  }

  static void ExpectViewMatchesTrace(const TraceView& view, const Trace& trace) {
    ASSERT_EQ(view.size(), trace.size());
    EXPECT_EQ(view.name(), trace.name());
    EXPECT_EQ(view.annotated(), trace.annotated());
    for (size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(view.id(i), trace[i].id) << i;
      EXPECT_EQ(view.object_size(i), trace[i].size) << i;
      EXPECT_EQ(view.op(i), trace[i].op) << i;
      EXPECT_EQ(view.tenant(i), trace[i].tenant) << i;
      EXPECT_EQ(view.time(i), trace[i].time) << i;
      EXPECT_EQ(view.next_access(i), trace[i].next_access) << i;
      const Request r = view.At(i);
      EXPECT_EQ(r.id, trace[i].id) << i;
      EXPECT_EQ(r.next_access, trace[i].next_access) << i;
    }
  }

  std::string dir_;
};

TEST_F(TraceCacheTest, MmapViewMatchesHeapTracePerRequest) {
  for (const bool annotate : {false, true}) {
    const Trace trace = MakeTrace(7, annotate);
    TraceCache cache(dir_);
    const TraceView view =
        cache.GetOrGenerate(Spec(annotate ? "annotated" : "plain"), [&] { return MakeTrace(7, annotate); });
    ASSERT_EQ(view.AsRequests(), nullptr);  // really mmap-backed, not heap
    ExpectViewMatchesTrace(view, trace);
    EXPECT_EQ(view.ComputeFingerprint(), trace.Fingerprint());
    EXPECT_EQ(view.file_fingerprint(), trace.Fingerprint());
  }
}

TEST_F(TraceCacheTest, HeaderStatsMatchComputedStats) {
  const Trace trace = MakeTrace();
  TraceCache cache(dir_);
  const TraceView view = cache.GetOrGenerate(Spec("stats"), [] { return MakeTrace(); });
  const TraceStats& expected = trace.Stats();
  const TraceStats& got = view.stats();
  EXPECT_EQ(got.num_requests, expected.num_requests);
  EXPECT_EQ(got.num_objects, expected.num_objects);
  EXPECT_EQ(got.total_bytes_requested, expected.total_bytes_requested);
  EXPECT_EQ(got.footprint_bytes, expected.footprint_bytes);
  EXPECT_EQ(got.num_gets, expected.num_gets);
  EXPECT_EQ(got.num_sets, expected.num_sets);
  EXPECT_EQ(got.num_deletes, expected.num_deletes);
  EXPECT_DOUBLE_EQ(got.one_hit_wonder_ratio, expected.one_hit_wonder_ratio);
}

TEST_F(TraceCacheTest, WarmProcessMapsWithoutGenerating) {
  {
    TraceCache cold(dir_);
    cold.GetOrGenerate(Spec("warm"), [] { return MakeTrace(); });
    EXPECT_EQ(cold.misses(), 1u);
  }
  // A fresh TraceCache stands in for a new process: same dir, empty mapping
  // table.
  TraceCache warm(dir_);
  const TraceView view = warm.GetOrGenerate(Spec("warm"), []() -> Trace {
    ADD_FAILURE() << "warm hit must not regenerate";
    return MakeTrace();
  });
  EXPECT_EQ(warm.hits(), 1u);
  EXPECT_EQ(warm.misses(), 0u);
  ExpectViewMatchesTrace(view, MakeTrace());
  ASSERT_EQ(warm.events().size(), 1u);
  EXPECT_TRUE(warm.events()[0].warm);
  EXPECT_GT(warm.events()[0].cold_ms_recorded, 0.0);  // sidecar survived
}

TEST_F(TraceCacheTest, RepeatAcquisitionSharesTheMapping) {
  TraceCache cache(dir_);
  const TraceView a = cache.GetOrGenerate(Spec("share"), [] { return MakeTrace(); });
  const TraceView b = cache.GetOrGenerate(Spec("share"), []() -> Trace {
    ADD_FAILURE() << "in-process hit must not regenerate";
    return MakeTrace();
  });
  EXPECT_EQ(a.ComputeFingerprint(), b.ComputeFingerprint());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(TraceCacheTest, FingerprintMismatchIsRejectedAndRegenerated) {
  const TraceSpec spec = Spec("corrupt-id");
  {
    TraceCache cache(dir_);
    cache.GetOrGenerate(spec, [] { return MakeTrace(); });
  }
  // Flip a byte inside the id column: structurally valid, wrong content.
  const std::string path = FileFor(spec);
  {
    Trace t = MakeTrace();
    const TraceFileLayout layout =
        TraceFileLayout::For(t.size(), t.annotated(), static_cast<uint32_t>(t.name().size()));
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(layout.id_offset + 8));
    const char garbage = '\x5a';
    f.write(&garbage, 1);
  }
  EXPECT_THROW(MapTraceFile(path), std::runtime_error);

  TraceCache fresh(dir_);
  std::atomic<int> generations{0};
  const TraceView view = fresh.GetOrGenerate(spec, [&] {
    ++generations;
    return MakeTrace();
  });
  EXPECT_EQ(generations.load(), 1);  // corrupt file discarded, rebuilt
  ExpectViewMatchesTrace(view, MakeTrace());
  // The rebuilt file is valid again for the next process.
  EXPECT_EQ(MapTraceFile(path).ComputeFingerprint(), MakeTrace().Fingerprint());
}

TEST_F(TraceCacheTest, TruncatedFileIsRejectedAndRegenerated) {
  const TraceSpec spec = Spec("truncated");
  {
    TraceCache cache(dir_);
    cache.GetOrGenerate(spec, [] { return MakeTrace(); });
  }
  const std::string path = FileFor(spec);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 9);
  EXPECT_THROW(MapTraceFile(path), std::runtime_error);

  TraceCache fresh(dir_);
  const TraceView view = fresh.GetOrGenerate(spec, [] { return MakeTrace(); });
  EXPECT_EQ(fresh.misses(), 1u);
  ExpectViewMatchesTrace(view, MakeTrace());
}

TEST_F(TraceCacheTest, CorruptOpByteIsRejected) {
  const TraceSpec spec = Spec("corrupt-op");
  {
    TraceCache cache(dir_);
    cache.GetOrGenerate(spec, [] { return MakeTrace(); });
  }
  const Trace t = MakeTrace();
  const TraceFileLayout layout =
      TraceFileLayout::For(t.size(), t.annotated(), static_cast<uint32_t>(t.name().size()));
  const std::string path = FileFor(spec);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(layout.op_offset + 3));
    const char bad_op = 7;
    f.write(&bad_op, 1);
  }
  EXPECT_THROW(MapTraceFile(path), std::runtime_error);
  // Unverified mapping accepts the bytes (structure is intact) — that is the
  // knob's documented tradeoff.
  EXPECT_NO_THROW(MapTraceFile(path, /*verify=*/false));
}

TEST_F(TraceCacheTest, MapTraceFileRejectsLegacyV1) {
  // v1 is AoS with misaligned u64s at stride 24 — it must be read through
  // ReadBinaryTrace, never mmap'd.
  const std::string path = dir_ + "/legacy.s3ft";
  std::filesystem::create_directories(dir_);
  std::ofstream out(path, std::ios::binary);
  out.write("S3FT", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t n = 0;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.close();
  EXPECT_THROW(MapTraceFile(path), std::runtime_error);
  EXPECT_EQ(ReadBinaryTrace(path).size(), 0u);  // ...but stays readable
}

TEST_F(TraceCacheTest, ConcurrentFirstUseGeneratesOnceAndAgrees) {
  TraceCache cache(dir_);
  std::atomic<int> generations{0};
  std::vector<std::thread> threads;
  std::vector<TraceView> views(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      views[i] = cache.GetOrGenerate(Spec("race"), [&] {
        ++generations;
        return MakeTrace();
      });
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(generations.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 7u);
  const uint64_t expected = MakeTrace().Fingerprint();
  for (const TraceView& v : views) {
    EXPECT_EQ(v.ComputeFingerprint(), expected);
  }
  // Exactly one published file (no leftover temp files).
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    files += entry.path().extension() == ".s3ft" ? 1 : 0;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(TraceCacheTest, MaterializeTraceRoundTrips) {
  const Trace original = MakeTrace(11, /*annotate=*/true);
  TraceCache cache(dir_);
  const TraceView view = cache.GetOrGenerate(Spec("mat"), [] { return MakeTrace(11, true); });
  const Trace copy = MaterializeTrace(view);
  ASSERT_EQ(copy.size(), original.size());
  EXPECT_EQ(copy.name(), original.name());
  EXPECT_TRUE(copy.annotated());
  EXPECT_EQ(copy.Fingerprint(), original.Fingerprint());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(copy[i].tenant, original[i].tenant);
    EXPECT_EQ(copy[i].next_access, original[i].next_access);
    EXPECT_EQ(copy[i].time, original[i].time);
  }
}

TEST_F(TraceCacheTest, BorrowedHeapViewMatchesTrace) {
  const Trace trace = MakeTrace(13, /*annotate=*/true);
  const TraceView view = TraceView::Borrow(trace);
  ASSERT_NE(view.AsRequests(), nullptr);
  ExpectViewMatchesTrace(view, trace);
  EXPECT_EQ(view.ComputeFingerprint(), trace.Fingerprint());
}

TEST_F(TraceCacheTest, CacheKeysAreStableSanitizedAndDistinct) {
  const TraceSpec a{"msr", "seed=1"};
  EXPECT_EQ(a.CacheKey(), (TraceSpec{"msr", "seed=1"}.CacheKey()));
  EXPECT_NE(a.CacheKey(), (TraceSpec{"msr", "seed=2"}.CacheKey()));
  EXPECT_NE(a.CacheKey(), (TraceSpec{"twitter", "seed=1"}.CacheKey()));
  TraceSpec versioned = a;
  versioned.generator_version = a.generator_version + 1;
  EXPECT_NE(a.CacheKey(), versioned.CacheKey());  // version bump invalidates

  const std::string weird = (TraceSpec{"a/b c!", "x"}).CacheKey();
  for (const char c : weird) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_') << weird;
  }
}

TEST_F(TraceCacheTest, SpecHelpersDistinguishEveryParameter) {
  const DatasetProfile& msr = DatasetByName("msr");
  const TraceSpec base = DatasetTraceSpec(msr, 0, 0.1);
  EXPECT_EQ(base.group, "msr");
  EXPECT_EQ(base.CacheKey(), DatasetTraceSpec(msr, 0, 0.1).CacheKey());
  EXPECT_NE(base.CacheKey(), DatasetTraceSpec(msr, 1, 0.1).CacheKey());
  EXPECT_NE(base.CacheKey(), DatasetTraceSpec(msr, 0, 0.2).CacheKey());
  EXPECT_NE(base.CacheKey(), DatasetTraceSpec(DatasetByName("twitter"), 0, 0.1).CacheKey());

  ZipfWorkloadConfig cfg;
  const TraceSpec z = ZipfTraceSpec(cfg);
  EXPECT_EQ(z.group, "zipf");
  ZipfWorkloadConfig cfg2 = cfg;
  cfg2.seed = cfg.seed + 1;
  EXPECT_NE(z.CacheKey(), ZipfTraceSpec(cfg2).CacheKey());
  ZipfWorkloadConfig cfg3 = cfg;
  cfg3.alpha += 1e-9;  // doubles serialize at full precision
  EXPECT_NE(z.CacheKey(), ZipfTraceSpec(cfg3).CacheKey());
}

TEST_F(TraceCacheTest, CachedDatasetTraceEqualsGeneratedOne) {
  const DatasetProfile& profile = DatasetByName("msr");
  const Trace generated = GenerateDatasetTrace(profile, 0, 0.05);
  TraceCache cache(dir_);
  const TraceView view = cache.GetOrGenerate(DatasetTraceSpec(profile, 0, 0.05),
                                             [&] { return GenerateDatasetTrace(profile, 0, 0.05); });
  ExpectViewMatchesTrace(view, generated);
}

}  // namespace
}  // namespace s3fifo
