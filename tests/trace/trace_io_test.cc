#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace s3fifo {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "s3fifo_trace_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static Trace SampleTrace() {
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i) {
      Request r;
      r.id = i * 31 % 17;
      r.size = static_cast<uint32_t>(64 + i);
      r.op = i % 5 == 0 ? OpType::kSet : (i % 11 == 0 ? OpType::kDelete : OpType::kGet);
      r.time = i;
      reqs.push_back(r);
    }
    return Trace(std::move(reqs));
  }

  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  Trace original = SampleTrace();
  WriteBinaryTrace(original, Path("t.bin"));
  Trace loaded = ReadBinaryTrace(Path("t.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
    EXPECT_EQ(loaded[i].time, original[i].time);
  }
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  Trace original = SampleTrace();
  WriteCsvTrace(original, Path("t.csv"));
  Trace loaded = ReadCsvTrace(Path("t.csv"));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
  }
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadBinaryTrace(Path("nope.bin")), std::runtime_error);
  EXPECT_THROW(ReadCsvTrace(Path("nope.csv")), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  out << "NOTATRACE___________________";
  out.close();
  EXPECT_THROW(ReadBinaryTrace(Path("bad.bin")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyThrows) {
  Trace original = SampleTrace();
  WriteBinaryTrace(original, Path("t.bin"));
  // Chop the file.
  const auto size = std::filesystem::file_size(Path("t.bin"));
  std::filesystem::resize_file(Path("t.bin"), size - 10);
  EXPECT_THROW(ReadBinaryTrace(Path("t.bin")), std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  WriteBinaryTrace(empty, Path("e.bin"));
  EXPECT_EQ(ReadBinaryTrace(Path("e.bin")).size(), 0u);
  WriteCsvTrace(empty, Path("e.csv"));
  EXPECT_EQ(ReadCsvTrace(Path("e.csv")).size(), 0u);
}

TEST_F(TraceIoTest, CsvMalformedLineThrows) {
  std::ofstream out(Path("bad.csv"));
  out << "time,id,size,op\n1,2\n";
  out.close();
  EXPECT_THROW(ReadCsvTrace(Path("bad.csv")), std::runtime_error);
}

TEST_F(TraceIoTest, CsvUnknownOpThrows) {
  std::ofstream out(Path("badop.csv"));
  out << "time,id,size,op\n1,2,3,frobnicate\n";
  out.close();
  EXPECT_THROW(ReadCsvTrace(Path("badop.csv")), std::runtime_error);
}

}  // namespace
}  // namespace s3fifo
