#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace s3fifo {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "s3fifo_trace_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static Trace SampleTrace() {
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 100; ++i) {
      Request r;
      r.id = i * 31 % 17;
      r.size = static_cast<uint32_t>(64 + i);
      r.op = i % 5 == 0 ? OpType::kSet : (i % 11 == 0 ? OpType::kDelete : OpType::kGet);
      r.time = i;
      reqs.push_back(r);
    }
    return Trace(std::move(reqs));
  }

  // Exercises every Request field: multi-tenant and next-access annotated.
  static Trace AnnotatedTrace() {
    Trace t = SampleTrace();
    uint64_t i = 0;
    for (Request& r : t.mutable_requests()) {
      r.tenant = static_cast<uint32_t>(i % 7);
      r.next_access = i % 3 == 0 ? kNeverAccessed : i + 1 + i % 13;
      ++i;
    }
    t.set_annotated(true);
    t.set_name("annotated/sample");
    return t;
  }

  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  Trace original = SampleTrace();
  WriteBinaryTrace(original, Path("t.bin"));
  Trace loaded = ReadBinaryTrace(Path("t.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
    EXPECT_EQ(loaded[i].time, original[i].time);
  }
}

// Regression: the v1 writer dropped tenant and next_access entirely. The v2
// columnar format must round-trip every Request field plus the trace name
// and annotation flag.
TEST_F(TraceIoTest, BinaryRoundTripPreservesTenantAndNextAccess) {
  Trace original = AnnotatedTrace();
  WriteBinaryTrace(original, Path("a.bin"));
  Trace loaded = ReadBinaryTrace(Path("a.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_TRUE(loaded.annotated());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
    EXPECT_EQ(loaded[i].time, original[i].time);
    EXPECT_EQ(loaded[i].tenant, original[i].tenant);
    EXPECT_EQ(loaded[i].next_access, original[i].next_access);
  }
  EXPECT_EQ(loaded.Fingerprint(), original.Fingerprint());
}

// Byte-determinism underpins the trace cache's atomic-rename race story:
// concurrent populators of a key must produce interchangeable files.
TEST_F(TraceIoTest, BinaryWriteIsByteDeterministic) {
  Trace original = AnnotatedTrace();
  WriteBinaryTrace(original, Path("d1.bin"));
  WriteBinaryTrace(original, Path("d2.bin"));
  std::ifstream a(Path("d1.bin"), std::ios::binary), b(Path("d2.bin"), std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
}

// Files written before the columnar format (24-byte AoS records) must stay
// readable.
TEST_F(TraceIoTest, ReadsLegacyV1Format) {
  Trace original = SampleTrace();
  std::ofstream out(Path("v1.bin"), std::ios::binary);
  out.write("S3FT", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t n = original.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Request& r : original.requests()) {
    const uint8_t op = static_cast<uint8_t>(r.op);
    const uint8_t pad[3] = {0, 0, 0};
    out.write(reinterpret_cast<const char*>(&r.id), 8);
    out.write(reinterpret_cast<const char*>(&r.size), 4);
    out.write(reinterpret_cast<const char*>(&op), 1);
    out.write(reinterpret_cast<const char*>(pad), 3);
    out.write(reinterpret_cast<const char*>(&r.time), 8);
  }
  out.close();

  Trace loaded = ReadBinaryTrace(Path("v1.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
    EXPECT_EQ(loaded[i].time, original[i].time);
  }
}

TEST_F(TraceIoTest, UnsupportedVersionThrows) {
  std::ofstream out(Path("v9.bin"), std::ios::binary);
  out.write("S3FT", 4);
  const uint32_t version = 9;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.close();
  EXPECT_THROW(ReadBinaryTrace(Path("v9.bin")), std::runtime_error);
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  Trace original = SampleTrace();
  WriteCsvTrace(original, Path("t.csv"));
  Trace loaded = ReadCsvTrace(Path("t.csv"));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].op, original[i].op);
  }
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadBinaryTrace(Path("nope.bin")), std::runtime_error);
  EXPECT_THROW(ReadCsvTrace(Path("nope.csv")), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  out << "NOTATRACE___________________";
  out.close();
  EXPECT_THROW(ReadBinaryTrace(Path("bad.bin")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyThrows) {
  Trace original = SampleTrace();
  WriteBinaryTrace(original, Path("t.bin"));
  // Chop the file.
  const auto size = std::filesystem::file_size(Path("t.bin"));
  std::filesystem::resize_file(Path("t.bin"), size - 10);
  EXPECT_THROW(ReadBinaryTrace(Path("t.bin")), std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  WriteBinaryTrace(empty, Path("e.bin"));
  EXPECT_EQ(ReadBinaryTrace(Path("e.bin")).size(), 0u);
  WriteCsvTrace(empty, Path("e.csv"));
  EXPECT_EQ(ReadCsvTrace(Path("e.csv")).size(), 0u);
}

TEST_F(TraceIoTest, CsvMalformedLineThrows) {
  std::ofstream out(Path("bad.csv"));
  out << "time,id,size,op\n1,2\n";
  out.close();
  EXPECT_THROW(ReadCsvTrace(Path("bad.csv")), std::runtime_error);
}

TEST_F(TraceIoTest, CsvUnknownOpThrows) {
  std::ofstream out(Path("badop.csv"));
  out << "time,id,size,op\n1,2,3,frobnicate\n";
  out.close();
  EXPECT_THROW(ReadCsvTrace(Path("badop.csv")), std::runtime_error);
}

}  // namespace
}  // namespace s3fifo
