#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

Trace MakeTrace(std::vector<uint64_t> ids) {
  std::vector<Request> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    Request r;
    r.id = ids[i];
    r.time = i;
    reqs.push_back(r);
  }
  return Trace(std::move(reqs));
}

TEST(TraceTest, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  const TraceStats& s = t.Stats();
  EXPECT_EQ(s.num_requests, 0u);
  EXPECT_EQ(s.num_objects, 0u);
  EXPECT_DOUBLE_EQ(s.one_hit_wonder_ratio, 0.0);
}

TEST(TraceTest, StatsCountObjectsAndRequests) {
  Trace t = MakeTrace({1, 2, 1, 3, 1});
  const TraceStats& s = t.Stats();
  EXPECT_EQ(s.num_requests, 5u);
  EXPECT_EQ(s.num_objects, 3u);
}

TEST(TraceTest, OneHitWonderRatioMatchesPaperToyExample) {
  // Fig. 1: A B A C B A D A B C B A C A B D -> E... the 17-request example:
  // requests A B A C B A D A B C B A _ C A B D, object E appears once.
  Trace t = MakeTrace({'A', 'B', 'A', 'C', 'B', 'A', 'D', 'A', 'B', 'C', 'B', 'A', 'E', 'C',
                       'A', 'B', 'D'});
  const TraceStats& s = t.Stats();
  EXPECT_EQ(s.num_objects, 5u);
  EXPECT_DOUBLE_EQ(s.one_hit_wonder_ratio, 0.2);  // 1 of 5 (E)
}

TEST(TraceTest, DeletesExcludedFromPopularity) {
  std::vector<Request> reqs;
  Request r;
  r.id = 1;
  reqs.push_back(r);
  r.id = 2;
  r.op = OpType::kDelete;
  reqs.push_back(r);
  Trace t(std::move(reqs));
  const TraceStats& s = t.Stats();
  EXPECT_EQ(s.num_objects, 1u);
  EXPECT_EQ(s.num_deletes, 1u);
}

TEST(TraceTest, ByteAccounting) {
  std::vector<Request> reqs;
  Request r;
  r.id = 1;
  r.size = 100;
  reqs.push_back(r);
  r.id = 1;
  r.size = 100;
  reqs.push_back(r);
  r.id = 2;
  r.size = 50;
  reqs.push_back(r);
  Trace t(std::move(reqs));
  const TraceStats& s = t.Stats();
  EXPECT_EQ(s.total_bytes_requested, 250u);
  EXPECT_EQ(s.footprint_bytes, 150u);
}

TEST(TraceTest, AppendInvalidatesStats) {
  Trace t = MakeTrace({1});
  EXPECT_EQ(t.Stats().num_requests, 1u);
  Request r;
  r.id = 2;
  t.Append(r);
  EXPECT_EQ(t.Stats().num_requests, 2u);
  EXPECT_FALSE(t.annotated());
}

TEST(TraceTest, OpCounts) {
  std::vector<Request> reqs(3);
  reqs[0].op = OpType::kGet;
  reqs[1].op = OpType::kSet;
  reqs[2].op = OpType::kDelete;
  Trace t(std::move(reqs));
  EXPECT_EQ(t.Stats().num_gets, 1u);
  EXPECT_EQ(t.Stats().num_sets, 1u);
  EXPECT_EQ(t.Stats().num_deletes, 1u);
}

}  // namespace
}  // namespace s3fifo
