#include "src/util/bloom_filter.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(10000, 0.01);
  for (uint64_t i = 0; i < 10000; ++i) {
    bf.Insert(i);
  }
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(bf.Contains(i)) << i;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  BloomFilter bf(10000, 0.01);
  for (uint64_t i = 0; i < 10000; ++i) {
    bf.Insert(i);
  }
  int fp = 0;
  const int probes = 100000;
  for (uint64_t i = 1000000; i < 1000000 + probes; ++i) {
    if (bf.Contains(i)) {
      ++fp;
    }
  }
  // Bits are rounded up to a power of two, so the realised rate is at or
  // below the target (with slack for randomness).
  EXPECT_LT(static_cast<double>(fp) / probes, 0.02);
}

TEST(BloomFilterTest, ClearForgetsEverything) {
  BloomFilter bf(1000, 0.01);
  bf.Insert(1);
  bf.Insert(2);
  EXPECT_TRUE(bf.Contains(1));
  bf.Clear();
  EXPECT_FALSE(bf.Contains(1));
  EXPECT_FALSE(bf.Contains(2));
  EXPECT_EQ(bf.inserted(), 0u);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter bf(1000, 0.01);
  int fp = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    if (bf.Contains(i)) {
      ++fp;
    }
  }
  EXPECT_EQ(fp, 0);
}

TEST(RotatingBloomFilterTest, RemembersRecentWindow) {
  RotatingBloomFilter rbf(1000, 0.001);
  for (uint64_t i = 0; i < 1000; ++i) {
    rbf.Insert(i);
  }
  // All of the last rotation window must still be present.
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rbf.Contains(i));
  }
}

TEST(RotatingBloomFilterTest, ForgetsOldEntriesAfterTwoRotations) {
  RotatingBloomFilter rbf(100, 0.001);
  rbf.Insert(42);
  // Two full rotations push id 42 out of both filters.
  for (uint64_t i = 1000; i < 1000 + 250; ++i) {
    rbf.Insert(i);
  }
  EXPECT_FALSE(rbf.Contains(42));
}

TEST(RotatingBloomFilterTest, MembershipSurvivesOneRotation) {
  RotatingBloomFilter rbf(100, 0.001);
  rbf.Insert(42);
  for (uint64_t i = 1000; i < 1000 + 110; ++i) {
    rbf.Insert(i);  // one rotation: 42 is in the "previous" filter
  }
  EXPECT_TRUE(rbf.Contains(42));
}

}  // namespace
}  // namespace s3fifo
