#include "src/util/count_min_sketch.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(CountMinSketchTest, EstimateNeverUndercounts) {
  CountMinSketch cms(1024);
  for (int i = 0; i < 7; ++i) {
    cms.Increment(42);
  }
  EXPECT_GE(cms.Estimate(42), 7u);
}

TEST(CountMinSketchTest, SaturatesAtFifteen) {
  CountMinSketch cms(1024);
  for (int i = 0; i < 100; ++i) {
    cms.Increment(7);
  }
  EXPECT_EQ(cms.Estimate(7), 15u);
}

TEST(CountMinSketchTest, ColdKeysEstimateNearZero) {
  CountMinSketch cms(4096);
  for (uint64_t i = 0; i < 500; ++i) {
    cms.Increment(i);
  }
  int overestimated = 0;
  for (uint64_t i = 100000; i < 101000; ++i) {
    if (cms.Estimate(i) > 1) {
      ++overestimated;
    }
  }
  EXPECT_LT(overestimated, 50);  // low collision noise at low load
}

TEST(CountMinSketchTest, AgeHalvesCounts) {
  CountMinSketch cms(1024);
  for (int i = 0; i < 8; ++i) {
    cms.Increment(5);
  }
  const uint32_t before = cms.Estimate(5);
  cms.Age();
  EXPECT_EQ(cms.Estimate(5), before / 2);
  cms.Age();
  EXPECT_EQ(cms.Estimate(5), before / 4);
}

TEST(CountMinSketchTest, AgeAffectsAllKeys) {
  CountMinSketch cms(1024);
  for (uint64_t k = 0; k < 50; ++k) {
    for (int i = 0; i < 6; ++i) {
      cms.Increment(k);
    }
  }
  cms.Age();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_LE(cms.Estimate(k), 4u) << k;  // 6/2=3 plus collision slack
  }
}

TEST(CountMinSketchTest, ClearZeroesEverything) {
  CountMinSketch cms(256);
  cms.Increment(1);
  cms.Increment(2);
  cms.Clear();
  EXPECT_EQ(cms.Estimate(1), 0u);
  EXPECT_EQ(cms.Estimate(2), 0u);
}

TEST(CountMinSketchTest, WidthIsPowerOfTwo) {
  CountMinSketch cms(1000);
  EXPECT_EQ(cms.width() & (cms.width() - 1), 0u);
  EXPECT_GE(cms.width(), 1000u);
}

}  // namespace
}  // namespace s3fifo
