// det_math: bit-reproducible elementary functions. Accuracy is checked
// against libm (within a few ulp); exact outputs are pinned by the
// golden-trace tests, which is where reproducibility actually matters.
#include "src/util/det_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/util/rng.h"

namespace s3fifo {
namespace {

double UlpDiff(double a, double b) {
  if (a == b) {
    return 0.0;
  }
  const double scale = std::ldexp(1.0, std::ilogb(std::max(std::fabs(a), std::fabs(b))));
  return std::fabs(a - b) / (scale * std::numeric_limits<double>::epsilon());
}

TEST(DetMathTest, LogMatchesLibmClosely) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::ldexp(1.0 + rng.NextDouble(), static_cast<int>(rng.NextBounded(80)) - 40);
    EXPECT_LE(UlpDiff(DetLog(x), std::log(x)), 4.0) << "x=" << x;
  }
  EXPECT_EQ(DetLog(1.0), 0.0);
  EXPECT_TRUE(std::isinf(DetLog(0.0)) && DetLog(0.0) < 0);
  EXPECT_TRUE(std::isnan(DetLog(-1.0)));
}

TEST(DetMathTest, ExpMatchesLibmClosely) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const double x = (rng.NextDouble() - 0.5) * 1200.0;
    const double got = DetExp(x);
    const double want = std::exp(x);
    if (want == 0.0 || std::isinf(want)) {
      EXPECT_EQ(got, want) << "x=" << x;
    } else {
      EXPECT_LE(UlpDiff(got, want), 4.0) << "x=" << x;
    }
  }
  EXPECT_EQ(DetExp(0.0), 1.0);
  EXPECT_EQ(DetExp(1000.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(DetExp(-1000.0), 0.0);
}

TEST(DetMathTest, Log1pExpm1MatchLibmClosely) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = (rng.NextDouble() - 0.5) * 2.0;  // (-1, 1)
    if (x > -1.0) {
      EXPECT_LE(UlpDiff(DetLog1p(x), std::log1p(x)), 4.0) << "x=" << x;
    }
    EXPECT_LE(UlpDiff(DetExpm1(x), std::expm1(x)), 4.0) << "x=" << x;
  }
}

TEST(DetMathTest, SinCosMatchLibmCloselyInReducedRange) {
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const double x = (rng.NextDouble() - 0.5) * 128.0;  // |x| <= 64: documented domain
    const double sc = DetSin(x);
    const double cc = DetCos(x);
    EXPECT_NEAR(sc, std::sin(x), 1e-15 + 4e-16 * std::fabs(x)) << "x=" << x;
    EXPECT_NEAR(cc, std::cos(x), 1e-15 + 4e-16 * std::fabs(x)) << "x=" << x;
    EXPECT_NEAR(sc * sc + cc * cc, 1.0, 1e-14);
  }
}

TEST(DetMathTest, RoundTripsLogExp) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble() * 100.0 + 1e-3;
    EXPECT_NEAR(DetExp(DetLog(x)), x, x * 1e-14);
  }
}

}  // namespace
}  // namespace s3fifo
