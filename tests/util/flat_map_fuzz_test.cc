// Property/fuzz test: FlatMap against a std::unordered_map oracle on seeded
// random operation streams. Checks, after every operation:
//   * Find/Contains/size agree with the oracle;
//   * Emplace's inserted flag agrees, and a fresh insertion (including a
//     recycled slab slot) starts value-initialized;
//   * value pointers are STABLE — the pointer Emplace returned stays valid
//     and keeps its payload across any number of rehashes until erase;
//   * ForEach visits exactly the oracle's key set.
// On failure the driving operation stream is ddmin-shrunk (chunk removal)
// to a minimal reproducer and printed seed-first, so a CI failure is
// replayable from the log alone.
#include "src/util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/rng.h"
#include "src/util/simd_probe.h"

namespace s3fifo {
namespace {

struct Payload {
  uint64_t value = 0;
};

struct Op {
  enum Kind : uint8_t { kEmplace, kErase, kFind, kReserve } kind;
  uint64_t key;
};

std::vector<Op> GenerateOps(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Op op;
    const double p = rng.NextDouble();
    if (p < 0.45) {
      op.kind = Op::kEmplace;
    } else if (p < 0.70) {
      op.kind = Op::kErase;
    } else if (p < 0.99) {
      op.kind = Op::kFind;
    } else {
      op.kind = Op::kReserve;
    }
    // Mostly a hot universe (forces collisions, recycling, and long probe
    // chains); occasionally a wide key so growth keeps firing.
    op.key = rng.NextDouble() < 0.9 ? rng.NextBounded(512)
                                    : rng.NextBounded(uint64_t{1} << 48);
    ops.push_back(op);
  }
  return ops;
}

// Runs the stream against both maps; returns "" on success or a description
// of the first divergence.
std::string RunOps(const std::vector<Op>& ops) {
  FlatMap<Payload> map;
  std::unordered_map<uint64_t, uint64_t> oracle;   // key -> expected payload
  std::unordered_map<uint64_t, Payload*> pointers;  // key -> stable address
  uint64_t next_value = 1;

  auto fail = [](size_t i, const Op& op, const std::string& what) {
    std::ostringstream out;
    out << what << " at op " << i << " (kind=" << static_cast<int>(op.kind)
        << " key=" << op.key << ")";
    return out.str();
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kEmplace: {
        bool inserted = false;
        Payload* p = map.Emplace(op.key, &inserted);
        const bool expect_insert = oracle.find(op.key) == oracle.end();
        if (inserted != expect_insert) {
          return fail(i, op, "inserted flag mismatch");
        }
        if (inserted) {
          if (p->value != 0) {
            return fail(i, op, "recycled slab slot not value-initialized");
          }
          p->value = next_value++;
          oracle[op.key] = p->value;
          pointers[op.key] = p;
        } else {
          if (p != pointers[op.key]) {
            return fail(i, op, "Emplace moved an existing value");
          }
          if (p->value != oracle[op.key]) {
            return fail(i, op, "existing payload clobbered");
          }
        }
        break;
      }
      case Op::kErase: {
        const bool erased = map.Erase(op.key);
        if (erased != (oracle.erase(op.key) != 0)) {
          return fail(i, op, "erase result mismatch");
        }
        pointers.erase(op.key);
        break;
      }
      case Op::kFind: {
        Payload* p = map.Find(op.key);
        auto it = oracle.find(op.key);
        if ((p != nullptr) != (it != oracle.end())) {
          return fail(i, op, "find presence mismatch");
        }
        if (p != nullptr && (p != pointers[op.key] || p->value != it->second)) {
          return fail(i, op, "find returned wrong address or payload");
        }
        if (map.Contains(op.key) != (p != nullptr)) {
          return fail(i, op, "Contains disagrees with Find");
        }
        break;
      }
      case Op::kReserve:
        // Rehash pressure; key doubles as the size hint. Pointers and
        // payloads must survive (checked by every later op).
        map.Reserve(op.key % 4096);
        break;
    }
    if (map.size() != oracle.size()) {
      return fail(i, op, "size mismatch");
    }
  }

  // Full-table sweep: ForEach must visit exactly the oracle's pairs.
  uint64_t visited = 0;
  std::string sweep_error;
  map.ForEach([&](uint64_t key, Payload& value) {
    ++visited;
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      sweep_error = "ForEach visited a key the oracle lacks";
    } else if (value.value != it->second) {
      sweep_error = "ForEach saw a wrong payload";
    }
  });
  if (!sweep_error.empty()) {
    return sweep_error;
  }
  if (visited != oracle.size()) {
    return "ForEach visit count != oracle size";
  }
  return "";
}

// ddmin-lite: repeatedly drop chunks while the stream still fails.
std::vector<Op> ShrinkOps(std::vector<Op> ops) {
  size_t chunk = ops.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start + chunk <= ops.size();) {
      std::vector<Op> candidate;
      candidate.reserve(ops.size() - chunk);
      candidate.insert(candidate.end(), ops.begin(), ops.begin() + start);
      candidate.insert(candidate.end(), ops.begin() + start + chunk, ops.end());
      if (!RunOps(candidate).empty()) {
        ops = std::move(candidate);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      chunk /= 2;
    }
  }
  return ops;
}

void FuzzSeed(uint64_t seed, size_t count) {
  const std::vector<Op> ops = GenerateOps(seed, count);
  const std::string error = RunOps(ops);
  if (error.empty()) {
    return;
  }
  const std::vector<Op> shrunk = ShrinkOps(ops);
  std::fprintf(stderr, "FlatMap fuzz failure (backend=%s seed=%llu): %s\nshrunk to %zu ops:\n",
               probe::kProbeBackend, static_cast<unsigned long long>(seed), error.c_str(),
               shrunk.size());
  for (const Op& op : shrunk) {
    std::fprintf(stderr, "  kind=%d key=%llu\n", static_cast<int>(op.kind),
                 static_cast<unsigned long long>(op.key));
  }
  FAIL() << "FlatMap diverged from oracle (seed " << seed << "): " << error;
}

TEST(FlatMapFuzzTest, OracleDifferentialAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzSeed(0xf1a7000 + seed, 40000);
  }
}

TEST(FlatMapFuzzTest, ChurnHeavyRecycling) {
  // Erase-heavy stream over a tiny universe: maximal slab recycling and
  // backward-shift activity at a near-constant size.
  Rng rng(0xc4u);
  FlatMap<Payload> map;
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = rng.NextBounded(64);
    if (oracle.count(key) != 0) {
      ASSERT_TRUE(map.Erase(key));
      oracle.erase(key);
    } else {
      bool inserted = false;
      Payload* p = map.Emplace(key, &inserted);
      ASSERT_TRUE(inserted);
      ASSERT_EQ(p->value, 0u) << "stale payload in recycled slot";
      p->value = key + 1;
      oracle[key] = key + 1;
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  for (const auto& [key, value] : oracle) {
    Payload* p = map.Find(key);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, value);
  }
}

}  // namespace
}  // namespace s3fifo
