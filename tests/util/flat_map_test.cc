#include "src/util/flat_map.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "src/util/rng.h"

namespace s3fifo {
namespace {

struct Value {
  uint64_t a = 0;
  uint64_t b = 0;
};

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<Value> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_FALSE(m.Contains(1));
  EXPECT_FALSE(m.Erase(1));

  bool inserted = false;
  Value* v = m.Emplace(1, &inserted);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(inserted);
  v->a = 11;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Contains(1));
  EXPECT_EQ(m.Find(1), v);

  Value* again = m.Emplace(1, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again, v);
  EXPECT_EQ(again->a, 11u);  // existing value untouched
  EXPECT_EQ(m.size(), 1u);

  EXPECT_TRUE(m.Erase(1));
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_FALSE(m.Erase(1));
}

TEST(FlatMapTest, EmplaceValueInitializesReusedSlabSlots) {
  FlatMap<Value> m;
  Value* v = m.Emplace(1);
  v->a = 42;
  v->b = 7;
  m.Erase(1);
  bool inserted = false;
  Value* w = m.Emplace(2, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(w, v);  // LIFO free list reuses the slab slot...
  EXPECT_EQ(w->a, 0u);  // ...with a freshly value-initialized Value
  EXPECT_EQ(w->b, 0u);
}

TEST(FlatMapTest, PointerStabilityAcrossRehashes) {
  constexpr uint64_t kN = 20000;  // forces many doublings past kMinSlots
  FlatMap<Value> m;
  std::vector<Value*> ptrs;
  for (uint64_t i = 0; i < kN; ++i) {
    Value* v = m.Emplace(i);
    v->a = i;
    ptrs.push_back(v);
  }
  EXPECT_EQ(m.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(m.Find(i), ptrs[i]);
    EXPECT_EQ(ptrs[i]->a, i);
  }
}

TEST(FlatMapTest, MirrorsUnorderedMapUnderChurn) {
  // Random insert/update/erase churn over a small key space, checked against
  // std::unordered_map — exercises backward-shift deletion, slab reuse, and
  // rehashing together.
  FlatMap<Value> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(1234);
  for (int op = 0; op < 200000; ++op) {
    const uint64_t key = rng.NextBounded(1500);
    const uint32_t kind = static_cast<uint32_t>(rng.NextBounded(10));
    if (kind < 5) {
      m.Emplace(key)->a = static_cast<uint64_t>(op);
      ref[key] = static_cast<uint64_t>(op);
    } else if (kind < 8) {
      EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
    } else {
      const Value* v = m.Find(key);
      auto it = ref.find(key);
      ASSERT_EQ(v != nullptr, it != ref.end());
      if (v != nullptr) {
        EXPECT_EQ(v->a, it->second);
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatMapTest, IterationVisitsExactlyLiveEntriesUnderSlabReuse) {
  FlatMap<Value> m;
  // Insert 0..999, erase the evens, insert 1000..1499 (reusing slab slots).
  for (uint64_t i = 0; i < 1000; ++i) {
    m.Emplace(i)->a = i;
  }
  for (uint64_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(m.Erase(i));
  }
  for (uint64_t i = 1000; i < 1500; ++i) {
    m.Emplace(i)->a = i;
  }
  std::map<uint64_t, uint64_t> seen;
  m.ForEach([&](uint64_t key, const Value& v) {
    EXPECT_TRUE(seen.emplace(key, v.a).second) << "duplicate key " << key;
  });
  ASSERT_EQ(seen.size(), m.size());
  ASSERT_EQ(seen.size(), 500u + 500u);
  for (uint64_t i = 1; i < 1000; i += 2) {
    ASSERT_TRUE(seen.count(i));
    EXPECT_EQ(seen[i], i);
  }
  for (uint64_t i = 1000; i < 1500; ++i) {
    ASSERT_TRUE(seen.count(i));
    EXPECT_EQ(seen[i], i);
  }
}

TEST(FlatMapTest, ReserveAndClear) {
  FlatMap<Value> m;
  m.Reserve(5000);
  for (uint64_t i = 0; i < 5000; ++i) {
    m.Emplace(i)->a = i;
  }
  EXPECT_EQ(m.size(), 5000u);
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  // Usable again after Clear.
  m.Emplace(7)->a = 9;
  EXPECT_EQ(m.Find(7)->a, 9u);
}

}  // namespace
}  // namespace s3fifo
