#include "src/util/ghost_queue.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(GhostQueueTest, InsertThenContains) {
  GhostQueue g(10);
  g.Insert(1);
  g.Insert(2);
  EXPECT_TRUE(g.Contains(1));
  EXPECT_TRUE(g.Contains(2));
  EXPECT_FALSE(g.Contains(3));
  EXPECT_EQ(g.size(), 2u);
}

TEST(GhostQueueTest, EvictsOldestWhenFull) {
  GhostQueue g(3);
  g.Insert(1);
  g.Insert(2);
  g.Insert(3);
  g.Insert(4);  // evicts 1
  EXPECT_FALSE(g.Contains(1));
  EXPECT_TRUE(g.Contains(2));
  EXPECT_TRUE(g.Contains(4));
  EXPECT_EQ(g.size(), 3u);
}

TEST(GhostQueueTest, ReinsertRefreshesPosition) {
  GhostQueue g(3);
  g.Insert(1);
  g.Insert(2);
  g.Insert(3);
  g.Insert(1);  // 1 moves to head; still 3 entries
  EXPECT_EQ(g.size(), 3u);
  g.Insert(4);  // evicts 2, the oldest live entry
  EXPECT_TRUE(g.Contains(1));
  EXPECT_FALSE(g.Contains(2));
  EXPECT_TRUE(g.Contains(3));
  EXPECT_TRUE(g.Contains(4));
}

TEST(GhostQueueTest, RemoveDropsEntry) {
  GhostQueue g(5);
  g.Insert(1);
  g.Insert(2);
  g.Remove(1);
  EXPECT_FALSE(g.Contains(1));
  EXPECT_EQ(g.size(), 1u);
}

TEST(GhostQueueTest, RemoveThenReinsert) {
  GhostQueue g(2);
  g.Insert(1);
  g.Remove(1);
  g.Insert(1);
  EXPECT_TRUE(g.Contains(1));
  g.Insert(2);
  g.Insert(3);  // evicts 1
  EXPECT_FALSE(g.Contains(1));
  EXPECT_TRUE(g.Contains(2));
  EXPECT_TRUE(g.Contains(3));
}

TEST(GhostQueueTest, ShrinkCapacityEvictsOldest) {
  GhostQueue g(10);
  for (uint64_t i = 0; i < 10; ++i) {
    g.Insert(i);
  }
  g.set_capacity(3);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_TRUE(g.Contains(9));
  EXPECT_TRUE(g.Contains(8));
  EXPECT_TRUE(g.Contains(7));
  EXPECT_FALSE(g.Contains(6));
}

TEST(GhostQueueTest, SizeNeverExceedsCapacity) {
  GhostQueue g(7);
  for (uint64_t i = 0; i < 1000; ++i) {
    g.Insert(i % 13);
    ASSERT_LE(g.size(), 7u);
  }
}

TEST(GhostQueueTest, ClearEmpties) {
  GhostQueue g(5);
  g.Insert(1);
  g.Clear();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_FALSE(g.Contains(1));
}

TEST(GhostQueueTest, HeavyChurnStaysBounded) {
  // Exercises the stale-slot compaction path.
  GhostQueue g(100);
  for (uint64_t i = 0; i < 100000; ++i) {
    g.Insert(i % 50);  // constant re-insertions create stale slots
    ASSERT_LE(g.size(), 100u);
  }
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(g.Contains(i));
  }
}

}  // namespace
}  // namespace s3fifo
