#include "src/util/ghost_table.h"

#include <gtest/gtest.h>

#include "src/util/ghost_queue.h"
#include "src/util/rng.h"

namespace s3fifo {
namespace {

TEST(GhostTableTest, InsertThenContains) {
  GhostTable g(100);
  g.Insert(1);
  g.Insert(2);
  EXPECT_TRUE(g.Contains(1));
  EXPECT_TRUE(g.Contains(2));
  EXPECT_FALSE(g.Contains(999));
}

TEST(GhostTableTest, EntriesExpireAfterCapacityInsertions) {
  // Paper §4.2: entries inserted before N - S_G are no longer part of G.
  GhostTable g(50);
  g.Insert(7);
  for (uint64_t i = 100; i < 100 + 60; ++i) {
    g.Insert(i);
  }
  EXPECT_FALSE(g.Contains(7));
}

TEST(GhostTableTest, RecentEntriesSurvive) {
  GhostTable g(100);
  for (uint64_t i = 0; i < 80; ++i) {
    g.Insert(i);
  }
  int present = 0;
  for (uint64_t i = 0; i < 80; ++i) {
    if (g.Contains(i)) {
      ++present;
    }
  }
  // Collisions within a bucket may drop a few; the vast majority survive.
  EXPECT_GE(present, 75);
}

TEST(GhostTableTest, RemoveDropsEntry) {
  GhostTable g(100);
  g.Insert(5);
  EXPECT_TRUE(g.Contains(5));
  g.Remove(5);
  EXPECT_FALSE(g.Contains(5));
}

TEST(GhostTableTest, ReinsertRefreshesTimestamp) {
  GhostTable g(50);
  g.Insert(7);
  for (uint64_t i = 100; i < 140; ++i) {
    g.Insert(i);
  }
  g.Insert(7);  // refresh
  for (uint64_t i = 200; i < 240; ++i) {
    g.Insert(i);
  }
  EXPECT_TRUE(g.Contains(7));  // 40 < 50 insertions since refresh
}

TEST(GhostTableTest, ClearForgetsEverything) {
  GhostTable g(100);
  g.Insert(1);
  g.Clear();
  EXPECT_FALSE(g.Contains(1));
  EXPECT_EQ(g.insertions(), 0u);
  EXPECT_EQ(g.CountLive(), 0u);
}

TEST(GhostTableTest, LiveCountTracksLogicalQueue) {
  GhostTable g(100);
  for (uint64_t i = 0; i < 1000; ++i) {
    g.Insert(i);
  }
  // At most `capacity` entries can be logically live (collisions may have
  // dropped some physically).
  EXPECT_LE(g.CountLive(), 101u);
  EXPECT_GE(g.CountLive(), 60u);
}

// Behavioural agreement with the exact ghost queue: on a random workload the
// membership answers should almost always match (fingerprint collisions and
// bucket-overflow drops are rare).
TEST(GhostTableTest, AgreesWithExactGhostQueue) {
  const uint64_t cap = 500;
  GhostTable table(cap);
  GhostQueue exact(cap);
  Rng rng(17);
  uint64_t agree = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t id = rng.NextBounded(3000);
    if (rng.NextBool(0.5)) {
      table.Insert(id);
      exact.Insert(id);
    } else {
      ++total;
      if (table.Contains(id) == exact.Contains(id)) {
        ++agree;
      }
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.97);
}

}  // namespace
}  // namespace s3fifo
