#include "src/util/hash.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace s3fifo {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_EQ(HashId(123456789), HashId(123456789));
}

TEST(HashTest, Mix64ChangesOnEveryInput) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 100000u);  // no collisions on a small dense range
}

TEST(HashTest, Mix64AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int samples = 1000;
  for (uint64_t i = 0; i < samples; ++i) {
    const uint64_t a = Mix64(i);
    const uint64_t b = Mix64(i ^ 1);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean_flips = static_cast<double>(total_flips) / samples;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(HashTest, HashIdAndHashId2AreIndependentStreams) {
  int equal = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if ((HashId(i) & 0xFF) == (HashId2(i) & 0xFF)) {
      ++equal;
    }
  }
  // ~1000/256 expected if independent.
  EXPECT_LT(equal, 30);
}

TEST(HashTest, Fingerprint32NeverZero) {
  for (uint64_t i = 0; i < 200000; ++i) {
    ASSERT_NE(Fingerprint32(i), 0u);
  }
}

TEST(HashTest, Fingerprint32Deterministic) {
  EXPECT_EQ(Fingerprint32(987654321), Fingerprint32(987654321));
  EXPECT_NE(Fingerprint32(1), Fingerprint32(2));
}

}  // namespace
}  // namespace s3fifo
