#include "src/util/histogram.h"

#include <gtest/gtest.h>

namespace s3fifo {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryTest, BasicStats) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(SummaryTest, AddAfterPercentileResorts) {
  Summary s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
}

TEST(SummaryTest, MergeCombines) {
  Summary a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(SummaryTest, Stddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.Stddev(), 2.138, 0.01);  // sample stddev
}

TEST(LogHistogramTest, MeanIsExact) {
  LogHistogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LogHistogramTest, CumulativeFraction) {
  LogHistogram h;
  h.Add(1);   // bucket [1,1]
  h.Add(2);   // bucket [2,3]
  h.Add(100); // bucket [64,127]
  EXPECT_NEAR(h.CumulativeFraction(3), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.CumulativeFraction(127), 1.0, 1e-9);
}

TEST(LogHistogramTest, QuantileBounds) {
  LogHistogram h;
  for (uint64_t i = 0; i < 100; ++i) {
    h.Add(8);  // all in bucket [8,15]
  }
  EXPECT_EQ(h.Quantile(0.5), 15u);
}

TEST(LogHistogramTest, ZeroHandled) {
  LogHistogram h;
  h.Add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.CumulativeFraction(0), 1.0, 1e-9);
}

}  // namespace
}  // namespace s3fifo
