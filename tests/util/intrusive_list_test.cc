#include "src/util/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace s3fifo {
namespace {

struct Node {
  int value = 0;
  ListHook hook;
  ListHook hook2;
};

using List = IntrusiveList<Node, &Node::hook>;
using List2 = IntrusiveList<Node, &Node::hook2>;

TEST(IntrusiveListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.Back(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_EQ(list.PopBack(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrdering) {
  List list;
  Node a{1}, b{2}, c{3};
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Front(), &c);
  EXPECT_EQ(list.Back(), &a);
}

TEST(IntrusiveListTest, PushBackOrdering) {
  List list;
  Node a{1}, b{2};
  list.PushBack(&a);
  list.PushBack(&b);
  EXPECT_EQ(list.Front(), &a);
  EXPECT_EQ(list.Back(), &b);
}

TEST(IntrusiveListTest, PopBackIsFifoForPushFront) {
  List list;
  std::vector<Node> nodes(5);
  for (int i = 0; i < 5; ++i) {
    nodes[i].value = i;
    list.PushFront(&nodes[i]);
  }
  for (int i = 0; i < 5; ++i) {
    Node* n = list.PopBack();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);  // oldest first
  }
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RemoveMiddle) {
  List list;
  Node a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Older(&a), &c);
  EXPECT_FALSE(list.Contains(&b));
  EXPECT_TRUE(list.Contains(&a));
}

TEST(IntrusiveListTest, MoveToFront) {
  List list;
  Node a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.MoveToFront(&c);
  EXPECT_EQ(list.Front(), &c);
  EXPECT_EQ(list.Back(), &b);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, MoveToBack) {
  List list;
  Node a{1}, b{2};
  list.PushBack(&a);
  list.PushBack(&b);
  list.MoveToBack(&a);
  EXPECT_EQ(list.Back(), &a);
}

TEST(IntrusiveListTest, OlderNewerWalk) {
  List list;
  Node a{1}, b{2}, c{3};
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);  // order: c b a (front to back)
  EXPECT_EQ(list.Older(&c), &b);
  EXPECT_EQ(list.Older(&b), &a);
  EXPECT_EQ(list.Older(&a), nullptr);
  EXPECT_EQ(list.Newer(&a), &b);
  EXPECT_EQ(list.Newer(&c), nullptr);
}

TEST(IntrusiveListTest, NodeCanLiveOnTwoLists) {
  List list;
  List2 list2;
  Node a{1};
  list.PushFront(&a);
  list2.PushFront(&a);
  EXPECT_TRUE(list.Contains(&a));
  EXPECT_TRUE(list2.Contains(&a));
  list.Remove(&a);
  EXPECT_FALSE(list.Contains(&a));
  EXPECT_TRUE(list2.Contains(&a));
}

TEST(IntrusiveListTest, HookUnlinkedAfterRemove) {
  List list;
  Node a{1};
  list.PushFront(&a);
  list.Remove(&a);
  EXPECT_FALSE(a.hook.linked());
  // Re-insertable after removal.
  list.PushBack(&a);
  EXPECT_TRUE(a.hook.linked());
}

TEST(IntrusiveListTest, ClearEmptiesList) {
  List list;
  std::vector<Node> nodes(10);
  for (auto& n : nodes) {
    list.PushFront(&n);
  }
  list.Clear();
  EXPECT_TRUE(list.empty());
  for (auto& n : nodes) {
    EXPECT_FALSE(n.hook.linked());
  }
}

}  // namespace
}  // namespace s3fifo
