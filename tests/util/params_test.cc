#include "src/util/params.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace s3fifo {
namespace {

TEST(ParamsTest, EmptySpec) {
  Params p("");
  EXPECT_FALSE(p.Has("x"));
  EXPECT_EQ(p.GetU64("x", 7), 7u);
}

TEST(ParamsTest, ParsesMultiplePairs) {
  Params p("a=1,b=2.5,c=hello");
  EXPECT_EQ(p.GetU64("a", 0), 1u);
  EXPECT_DOUBLE_EQ(p.GetDouble("b", 0), 2.5);
  EXPECT_EQ(p.GetString("c", ""), "hello");
}

TEST(ParamsTest, TrimsWhitespace) {
  Params p(" a = 1 ,  b = x ");
  EXPECT_EQ(p.GetU64("a", 0), 1u);
  EXPECT_EQ(p.GetString("b", ""), "x");
}

TEST(ParamsTest, BoolParsing) {
  Params p("t1=1,t2=true,t3=yes,f1=0,f2=false");
  EXPECT_TRUE(p.GetBool("t1", false));
  EXPECT_TRUE(p.GetBool("t2", false));
  EXPECT_TRUE(p.GetBool("t3", false));
  EXPECT_FALSE(p.GetBool("f1", true));
  EXPECT_FALSE(p.GetBool("f2", true));
  EXPECT_TRUE(p.GetBool("missing", true));
}

TEST(ParamsTest, MalformedPairThrows) {
  EXPECT_THROW(Params("novalue"), std::invalid_argument);
  EXPECT_THROW(Params("a=1,bad"), std::invalid_argument);
}

TEST(ParamsTest, TrailingCommaTolerated) {
  Params p("a=1,");
  EXPECT_EQ(p.GetU64("a", 0), 1u);
}

TEST(ParamsTest, LaterValueWins) {
  // std::map::emplace keeps the first; document the behaviour.
  Params p("a=1,a=2");
  EXPECT_EQ(p.GetU64("a", 0), 1u);
}

TEST(ParamsTest, DefaultsPassThrough) {
  Params p("a=1");
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 3.14), 3.14);
  EXPECT_EQ(p.GetString("missing", "d"), "d");
}

}  // namespace
}  // namespace s3fifo
