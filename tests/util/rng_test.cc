#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace s3fifo {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextBounded(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int yes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) {
      ++yes;
    }
  }
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace s3fifo
