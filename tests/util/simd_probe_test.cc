// Differential tests for the probe kernel: the active backend (SSE2, NEON,
// or SWAR — whichever this binary compiled with) against the always-compiled
// portable reference, on exhaustive small cases and seeded random groups.
// The contract under test (simd_probe.h):
//   * MatchEmpty and Match32x8 are bitwise identical across backends;
//   * MatchTag may return a superset of the true equal-byte mask (the SWAR
//     backend's allowance) but never misses a true match, and any extra bit
//     must fall on a byte adjacent to a true zero of the XOR pattern — we
//     check the superset property and that exact backends are exact.
#include "src/util/simd_probe.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/util/rng.h"

namespace s3fifo {
namespace probe {
namespace {

// Ground truth computed one byte / one lane at a time.
uint32_t NaiveMatchTag(const uint8_t* ctrl, uint8_t tag) {
  uint32_t mask = 0;
  for (int i = 0; i < kGroupWidth; ++i) {
    mask |= static_cast<uint32_t>(ctrl[i] == tag) << i;
  }
  return mask;
}

uint32_t NaiveMatchEmpty(const uint8_t* ctrl) {
  uint32_t mask = 0;
  for (int i = 0; i < kGroupWidth; ++i) {
    mask |= static_cast<uint32_t>(ctrl[i] >= kCtrlEmpty) << i;
  }
  return mask;
}

uint32_t NaiveMatch32x8(const uint32_t* lanes, uint32_t x) {
  uint32_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    mask |= static_cast<uint32_t>(lanes[i] == x) << i;
  }
  return mask;
}

void FillGroup(Rng& rng, uint8_t* ctrl, double p_empty) {
  for (int i = 0; i < kGroupWidth; ++i) {
    ctrl[i] = rng.NextDouble() < p_empty ? kCtrlEmpty
                                         : static_cast<uint8_t>(rng.NextBounded(128));
  }
}

TEST(SimdProbeTest, BackendIsCompiledIn) {
  // Make the active backend visible in the test log; on x86-64 release
  // builds this must be the SIMD path unless S3FIFO_DISABLE_SIMD is set.
  SCOPED_TRACE(kProbeBackend);
#if defined(S3FIFO_DISABLE_SIMD)
  EXPECT_STREQ(kProbeBackend, "swar");
#elif defined(__x86_64__) || defined(_M_X64)
  EXPECT_STREQ(kProbeBackend, "sse2");
#endif
}

TEST(SimdProbeTest, MatchEmptyExactOnRandomGroups) {
  Rng rng(0x51abbed);
  uint8_t ctrl[kGroupWidth];
  for (int round = 0; round < 20000; ++round) {
    FillGroup(rng, ctrl, 0.3);
    const uint32_t naive = NaiveMatchEmpty(ctrl);
    EXPECT_EQ(MatchEmpty(LoadGroup(ctrl)), naive);
    EXPECT_EQ(PortableMatchEmpty(PortableLoadGroup(ctrl)), naive);
  }
}

TEST(SimdProbeTest, MatchTagSupersetOnRandomGroups) {
  Rng rng(0x7a95eed);
  uint8_t ctrl[kGroupWidth];
  for (int round = 0; round < 20000; ++round) {
    FillGroup(rng, ctrl, 0.2);
    const uint8_t tag = static_cast<uint8_t>(rng.NextBounded(128));
    const uint32_t naive = NaiveMatchTag(ctrl, tag);
    const uint32_t active = MatchTag(LoadGroup(ctrl), tag);
    const uint32_t portable = PortableMatchTag(PortableLoadGroup(ctrl), tag);
    // Supersets of the truth, confined to the 16 group bits.
    EXPECT_EQ(active & naive, naive);
    EXPECT_EQ(portable & naive, naive);
    EXPECT_EQ(active >> kGroupWidth, 0u);
    EXPECT_EQ(portable >> kGroupWidth, 0u);
#if !defined(S3FIFO_SIMD_PORTABLE)
    // Hardware byte compares are exact, not merely supersets.
    EXPECT_EQ(active, naive);
#endif
  }
}

// The SWAR MatchTag allowance is narrow: an extra candidate bit may only
// appear directly above a true match (a borrow artifact of the haszero
// trick). FlatMap additionally masks empties out of the candidate set, so
// the composition callers actually use must equal the exact filter.
TEST(SimdProbeTest, MatchTagMaskedByEmptyMatchesExactFilter) {
  Rng rng(0xf117e5);
  uint8_t ctrl[kGroupWidth];
  for (int round = 0; round < 20000; ++round) {
    FillGroup(rng, ctrl, 0.3);
    const uint8_t tag = static_cast<uint8_t>(rng.NextBounded(128));
    const uint32_t naive = NaiveMatchTag(ctrl, tag);
    const uint32_t empty = NaiveMatchEmpty(ctrl);
    const PortableGroup g = PortableLoadGroup(ctrl);
    const uint32_t candidates = PortableMatchTag(g, tag) & ~PortableMatchEmpty(g);
    // Spurious candidates can only sit on occupied slots, where the caller's
    // key compare rejects them; every true match must survive the mask.
    EXPECT_EQ(candidates & naive, naive);
    EXPECT_EQ(candidates & empty, 0u);
  }
}

TEST(SimdProbeTest, Match32x8ExactOnRandomBuckets) {
  Rng rng(0x320f8);
  alignas(16) uint32_t lanes[8];
  for (int round = 0; round < 20000; ++round) {
    for (uint32_t& lane : lanes) {
      // Small value range to force frequent equal lanes (and duplicates).
      lane = static_cast<uint32_t>(rng.NextBounded(8));
    }
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(8));
    const uint32_t naive = NaiveMatch32x8(lanes, x);
    EXPECT_EQ(Match32x8(lanes, x), naive);
    EXPECT_EQ(PortableMatch32x8(lanes, x), naive);
  }
}

TEST(SimdProbeTest, ExhaustiveSingleByteTags) {
  // Every (byte value, tag) pair in a one-hot group: the full 256x128 grid.
  uint8_t ctrl[kGroupWidth];
  for (int v = 0; v < 256; ++v) {
    for (int i = 0; i < kGroupWidth; ++i) {
      ctrl[i] = kCtrlEmpty;  // tags are 7-bit, so 0x80 never matches a tag
    }
    ctrl[5] = static_cast<uint8_t>(v);
    const uint32_t empty_naive = NaiveMatchEmpty(ctrl);
    EXPECT_EQ(MatchEmpty(LoadGroup(ctrl)), empty_naive);
    EXPECT_EQ(PortableMatchEmpty(PortableLoadGroup(ctrl)), empty_naive);
    for (int tag = 0; tag < 128; ++tag) {
      const uint32_t naive = NaiveMatchTag(ctrl, static_cast<uint8_t>(tag));
      const uint32_t active = MatchTag(LoadGroup(ctrl), static_cast<uint8_t>(tag));
      const uint32_t portable =
          PortableMatchTag(PortableLoadGroup(ctrl), static_cast<uint8_t>(tag));
      EXPECT_EQ(active & naive, naive);
      EXPECT_EQ(portable & naive, naive);
    }
  }
}

}  // namespace
}  // namespace probe
}  // namespace s3fifo
