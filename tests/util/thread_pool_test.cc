#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace s3fifo {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still complete queued work or drain safely.
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelSubmissionFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 400);
}

}  // namespace
}  // namespace s3fifo
