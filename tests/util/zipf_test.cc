#include "src/util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace s3fifo {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST(ZipfTest, DeterministicGivenRngSeed) {
  ZipfDistribution zipf(5000, 0.9);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf.Sample(a), zipf.Sample(b));
  }
}

// Empirical frequencies must match the analytic Zipf pmf.
class ZipfPmfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmfTest, MatchesAnalyticDistribution) {
  const double alpha = GetParam();
  const uint64_t n = 100;
  ZipfDistribution zipf(n, alpha);
  Rng rng(7);
  std::vector<double> counts(n + 1, 0.0);
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) {
    counts[zipf.Sample(rng)] += 1.0;
  }
  double harmonic = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    harmonic += std::pow(static_cast<double>(k), -alpha);
  }
  for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{5}, uint64_t{10}, uint64_t{50}}) {
    const double expected = std::pow(static_cast<double>(k), -alpha) / harmonic;
    const double observed = counts[k] / samples;
    EXPECT_NEAR(observed, expected, std::max(0.004, expected * 0.08))
        << "alpha=" << alpha << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfPmfTest, ::testing::Values(0.6, 0.8, 1.0, 1.2, 1.5));

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  Rng rng(3);
  std::vector<int> counts(51, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (uint64_t k = 1; k <= 50; ++k) {
    EXPECT_NEAR(counts[k], samples / 50, samples / 250);
  }
}

TEST(ZipfTest, LargeUniverseIsConstantTime) {
  // Rejection inversion must work for universes far too large for a CDF
  // table; smoke-check range and skew direction.
  ZipfDistribution zipf(1ULL << 40, 1.0);
  Rng rng(5);
  uint64_t below_1k = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1ULL << 40);
    if (k <= 1000) {
      ++below_1k;
    }
  }
  // For alpha=1 and N=2^40, P(rank <= 1000) = H(1000)/H(2^40) ~ 0.25.
  EXPECT_GT(below_1k, 1500u);
  EXPECT_LT(below_1k, 3500u);
}

TEST(ZipfTest, HigherAlphaIsMoreSkewed) {
  Rng rng(9);
  auto top10_mass = [&](double alpha) {
    ZipfDistribution zipf(10000, alpha);
    int top = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
      if (zipf.Sample(rng) <= 10) {
        ++top;
      }
    }
    return static_cast<double>(top) / samples;
  };
  EXPECT_LT(top10_mass(0.6), top10_mass(1.0));
  EXPECT_LT(top10_mass(1.0), top10_mass(1.4));
}

TEST(ZipfTest, SingleElementUniverse) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(zipf.Sample(rng), 1u);
  }
}

}  // namespace
}  // namespace s3fifo
