#include "src/workload/dataset_profiles.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace s3fifo {
namespace {

TEST(DatasetProfilesTest, FourteenDatasets) {
  EXPECT_EQ(AllDatasetProfiles().size(), 14u);  // Table 1 has 14 rows
}

TEST(DatasetProfilesTest, NamesAreUniqueAndLookupWorks) {
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    EXPECT_EQ(DatasetByName(d.name).name, d.name);
  }
  EXPECT_THROW(DatasetByName("not-a-dataset"), std::out_of_range);
}

TEST(DatasetProfilesTest, CacheTypesCoverAllThree) {
  bool block = false, kv = false, object = false;
  for (const DatasetProfile& d : AllDatasetProfiles()) {
    block |= d.cache_type == "block";
    kv |= d.cache_type == "kv";
    object |= d.cache_type == "object";
  }
  EXPECT_TRUE(block);
  EXPECT_TRUE(kv);
  EXPECT_TRUE(object);
}

TEST(DatasetProfilesTest, TraceGenerationIsDeterministic) {
  const DatasetProfile& d = DatasetByName("twitter");
  Trace a = GenerateDatasetTrace(d, 0, 0.1);
  Trace b = GenerateDatasetTrace(d, 0, 0.1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id);
  }
}

TEST(DatasetProfilesTest, DifferentInstancesDiffer) {
  const DatasetProfile& d = DatasetByName("msr");
  Trace a = GenerateDatasetTrace(d, 0, 0.1);
  Trace b = GenerateDatasetTrace(d, 1, 0.1);
  EXPECT_NE(a.Stats().num_objects, b.Stats().num_objects);
}

TEST(DatasetProfilesTest, ScaleControlsLength) {
  const DatasetProfile& d = DatasetByName("wiki");
  Trace small = GenerateDatasetTrace(d, 0, 0.05);
  Trace large = GenerateDatasetTrace(d, 0, 0.2);
  EXPECT_LT(small.size() * 2, large.size());
}

TEST(DatasetProfilesTest, KvProfilesAreLowOneHitWonder) {
  // Table 1: Twitter 0.19, Social Network 0.17 full-trace one-hit-wonder —
  // the KV profiles must land clearly below the CDN/block ones.
  const double twitter =
      GenerateDatasetTrace(DatasetByName("twitter"), 0, 0.25).Stats().one_hit_wonder_ratio;
  const double meta_cdn =
      GenerateDatasetTrace(DatasetByName("meta_cdn"), 0, 0.25).Stats().one_hit_wonder_ratio;
  EXPECT_LT(twitter, 0.4);
  EXPECT_GT(meta_cdn, twitter);
}

TEST(DatasetProfilesTest, ObjectProfilesCarrySizes) {
  Trace t = GenerateDatasetTrace(DatasetByName("cdn1"), 0, 0.1);
  bool varied = false;
  const uint32_t first = t[0].size;
  for (const Request& r : t.requests()) {
    if (r.size != first) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace s3fifo
