// Golden-trace hashes: pin the exact request streams the generators emit.
//
// Every transcendental in the generation path goes through
// src/util/det_math.h and every random draw through the in-repo xoshiro/Zipf
// samplers, so a (config, seed) pair must produce a bit-identical trace on
// every platform and standard library. These constants are the contract; if
// one changes, either the generator changed behaviour (update the constant
// deliberately) or cross-platform reproducibility broke (fix that instead).
#include <gtest/gtest.h>

#include "src/check/trace_fuzzer.h"
#include "src/trace/trace.h"
#include "src/workload/zipf_workload.h"

namespace s3fifo {
namespace {

TEST(GoldenTraceTest, PlainZipfFingerprint) {
  ZipfWorkloadConfig config;
  config.num_objects = 10000;
  config.num_requests = 50000;
  config.alpha = 1.0;
  config.seed = 3;
  const Trace trace = GenerateZipfTrace(config);
  EXPECT_EQ(trace.Fingerprint(), 0xeeb5dce6587de984ULL);
}

TEST(GoldenTraceTest, FullFeatureMixFingerprint) {
  ZipfWorkloadConfig config;
  config.num_objects = 5000;
  config.num_requests = 50000;
  config.alpha = 0.8;
  config.new_object_fraction = 0.05;
  config.scan_fraction = 0.002;
  config.scan_length = 200;
  config.loop_fraction = 0.001;
  config.loop_length = 100;
  config.loop_repeats = 3;
  config.burst_fraction = 0.2;
  config.write_fraction = 0.1;
  config.delete_fraction = 0.02;
  config.size_mean_bytes = 4096;
  config.size_sigma = 1.5;  // exercises DetLog/DetExp/DetCos via Box-Muller
  config.seed = 11;
  const Trace trace = GenerateZipfTrace(config);
  EXPECT_EQ(trace.Fingerprint(), 0xc98fc4b06662b65bULL);
}

TEST(GoldenTraceTest, FuzzerStreamFingerprint) {
  check::FuzzConfig config;
  config.seed = 5;
  config.num_requests = 20000;
  config.capacity = 256;
  config.count_based = false;
  const Trace trace(check::GenerateFuzzRequests(config), "fuzz");
  EXPECT_EQ(trace.Fingerprint(), 0xa6e43baa34315f88ULL);
}

TEST(GoldenTraceTest, SameSeedSameTraceDifferentSeedDifferentTrace) {
  ZipfWorkloadConfig config;
  config.num_objects = 1000;
  config.num_requests = 10000;
  config.size_sigma = 1.0;
  config.seed = 21;
  const uint64_t first = GenerateZipfTrace(config).Fingerprint();
  const uint64_t again = GenerateZipfTrace(config).Fingerprint();
  EXPECT_EQ(first, again);
  config.seed = 22;
  EXPECT_NE(GenerateZipfTrace(config).Fingerprint(), first);
}

}  // namespace
}  // namespace s3fifo
