#include "src/workload/scan_workload.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace s3fifo {
namespace {

TEST(ScanWorkloadTest, SequentialScanIsAllOneHitWonders) {
  Trace t = GenerateSequentialScan(1000);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(t.Stats().num_objects, 1000u);
  EXPECT_DOUBLE_EQ(t.Stats().one_hit_wonder_ratio, 1.0);
}

TEST(ScanWorkloadTest, LoopRepeatsRegion) {
  Trace t = GenerateLoop(10, 100);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.Stats().num_objects, 10u);
  EXPECT_DOUBLE_EQ(t.Stats().one_hit_wonder_ratio, 0.0);
}

TEST(ScanWorkloadTest, LoopZeroRegionSafe) {
  Trace t = GenerateLoop(0, 10);
  EXPECT_EQ(t.Stats().num_objects, 1u);
}

TEST(ScanWorkloadTest, TwoHitPatternEveryObjectTwice) {
  Trace t = GenerateTwoHitPattern(500, 50);
  std::unordered_map<uint64_t, uint32_t> counts;
  for (const Request& r : t.requests()) {
    ++counts[r.id];
  }
  EXPECT_EQ(counts.size(), 500u);
  for (const auto& [id, n] : counts) {
    ASSERT_EQ(n, 2u) << "object " << id;
  }
}

TEST(ScanWorkloadTest, TwoHitPatternReuseDistanceIsFixed) {
  const uint64_t distance = 20;
  Trace t = GenerateTwoHitPattern(200, distance);
  std::unordered_map<uint64_t, uint64_t> first_seen_unique;
  // Measure reuse distance in unique objects between the two accesses.
  std::unordered_map<uint64_t, size_t> first_pos;
  for (size_t i = 0; i < t.size(); ++i) {
    const uint64_t id = t[i].id;
    auto it = first_pos.find(id);
    if (it == first_pos.end()) {
      first_pos[id] = i;
      continue;
    }
    // Count distinct other ids between the two accesses.
    std::unordered_map<uint64_t, bool> between;
    for (size_t j = it->second + 1; j < i; ++j) {
      if (t[j].id != id) {
        between[t[j].id] = true;
      }
    }
    // The interleaving yields D distinct objects for the earliest ids and
    // approaches 2D in steady state (firsts of the next D ids plus seconds
    // of the previous D ids).
    ASSERT_GE(between.size(), distance) << "object " << id;
    ASSERT_LE(between.size(), 2 * distance) << "object " << id;
    if (first_pos.size() > 60) {
      break;  // checked enough of the prefix
    }
  }
}

}  // namespace
}  // namespace s3fifo
