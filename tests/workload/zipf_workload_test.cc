#include "src/workload/zipf_workload.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace s3fifo {
namespace {

ZipfWorkloadConfig SmallConfig() {
  ZipfWorkloadConfig c;
  c.num_objects = 1000;
  c.num_requests = 20000;
  c.alpha = 1.0;
  c.seed = 5;
  return c;
}

TEST(ZipfWorkloadTest, GeneratesRequestedLength) {
  Trace t = GenerateZipfTrace(SmallConfig());
  EXPECT_EQ(t.size(), 20000u);
}

TEST(ZipfWorkloadTest, DeterministicInSeed) {
  Trace a = GenerateZipfTrace(SmallConfig());
  Trace b = GenerateZipfTrace(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id);
    ASSERT_EQ(a[i].op, b[i].op);
  }
}

TEST(ZipfWorkloadTest, DifferentSeedsDiffer) {
  ZipfWorkloadConfig c = SmallConfig();
  Trace a = GenerateZipfTrace(c);
  c.seed = 6;
  Trace b = GenerateZipfTrace(c);
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id == b[i].id) {
      ++same;
    }
  }
  EXPECT_LT(same, a.size() / 2);
}

TEST(ZipfWorkloadTest, FootprintBoundedByUniverse) {
  Trace t = GenerateZipfTrace(SmallConfig());
  EXPECT_LE(t.Stats().num_objects, 1000u);
  EXPECT_GT(t.Stats().num_objects, 500u);  // 20k draws cover most of 1k objects
}

TEST(ZipfWorkloadTest, NewObjectFractionAddsOneHitWonders) {
  ZipfWorkloadConfig c = SmallConfig();
  const double base_ohw = GenerateZipfTrace(c).Stats().one_hit_wonder_ratio;
  c.new_object_fraction = 0.2;
  Trace t = GenerateZipfTrace(c);
  EXPECT_GT(t.Stats().one_hit_wonder_ratio, base_ohw + 0.1);
}

TEST(ZipfWorkloadTest, ScanProducesSingleUseRuns) {
  ZipfWorkloadConfig c = SmallConfig();
  c.scan_fraction = 0.002;
  c.scan_length = 500;
  Trace t = GenerateZipfTrace(c);
  // Scans inflate the object count well past the Zipf universe.
  EXPECT_GT(t.Stats().num_objects, 2000u);
}

TEST(ZipfWorkloadTest, WriteAndDeleteMix) {
  ZipfWorkloadConfig c = SmallConfig();
  c.write_fraction = 0.2;
  c.delete_fraction = 0.05;
  Trace t = GenerateZipfTrace(c);
  const TraceStats& s = t.Stats();
  const double write_frac = static_cast<double>(s.num_sets) / s.num_requests;
  const double delete_frac = static_cast<double>(s.num_deletes) / s.num_requests;
  EXPECT_NEAR(write_frac, 0.2, 0.02);
  EXPECT_NEAR(delete_frac, 0.05, 0.01);
}

TEST(ZipfWorkloadTest, SizesAreStablePerObject) {
  ZipfWorkloadConfig c = SmallConfig();
  c.size_sigma = 1.0;
  c.size_mean_bytes = 4096;
  Trace t = GenerateZipfTrace(c);
  std::unordered_map<uint64_t, uint32_t> first_size;
  for (const Request& r : t.requests()) {
    auto [it, inserted] = first_size.emplace(r.id, r.size);
    if (!inserted) {
      ASSERT_EQ(it->second, r.size) << "object size changed between requests";
    }
  }
}

TEST(ZipfWorkloadTest, SizesRespectBounds) {
  ZipfWorkloadConfig c = SmallConfig();
  c.size_sigma = 2.0;
  c.size_min_bytes = 128;
  c.size_max_bytes = 1 << 20;
  Trace t = GenerateZipfTrace(c);
  for (const Request& r : t.requests()) {
    ASSERT_GE(r.size, 128u);
    ASSERT_LE(r.size, 1u << 20);
  }
}

TEST(ZipfWorkloadTest, FixedSizeWhenSigmaZero) {
  ZipfWorkloadConfig c = SmallConfig();
  c.size_sigma = 0.0;
  c.size_mean_bytes = 777;
  Trace t = GenerateZipfTrace(c);
  for (const Request& r : t.requests()) {
    ASSERT_EQ(r.size, 777u);
  }
}

TEST(ZipfWorkloadTest, LoopRegionsRepeat) {
  ZipfWorkloadConfig c = SmallConfig();
  c.num_requests = 50000;
  c.loop_fraction = 0.001;
  c.loop_length = 100;
  c.loop_repeats = 4;
  Trace t = GenerateZipfTrace(c);
  // Loops create objects with exactly loop_repeats accesses; verify some
  // object outside the Zipf universe has >= 3 accesses.
  std::unordered_map<uint64_t, uint32_t> counts;
  for (const Request& r : t.requests()) {
    ++counts[r.id];
  }
  // Count scan/loop-space objects with multiple requests.
  int loopish = 0;
  for (const auto& [id, n] : counts) {
    if (n == 4) {
      ++loopish;
    }
  }
  EXPECT_GT(loopish, 10);
}

}  // namespace
}  // namespace s3fifo
