#!/usr/bin/env python3
"""CI smoke check for the log-structured flash backend.

Usage:
  check_flash_smoke.py BENCH_flash.json

Validates a BENCH_flash.json produced by bench_flash_wa:
  1. the full grid ran: every (dataset, backend, admission) row is present;
  2. byte conservation holds exactly in every row —
       log_device_bytes == log_admitted_bytes + gc_rewrite_bytes
       set_device_bytes == set_page_writes * set_bytes
     and the combined totals are the sums of the components;
  3. write amplification is consistent (device/admitted) and >= 1, with
     WA == 1.0 exactly for the pure-FIFO no-readmit backend (it never
     rewrites) and gc_rewrite_bytes == 0 there;
  4. the paper's Fig. 9 shape: per dataset and backend, no-admission writes
     strictly more device bytes than the s3fifo filter, and the s3fifo
     filter's miss ratio is at or below no-admission's.

Exits non-zero with a diagnostic on any violation.
"""

import json
import sys

DATASETS = ("wiki", "tencent_photo")
BACKENDS = ("log-fifo", "log-fifo-readmit", "log-ripq", "log-ripq+sets")
ADMISSIONS = ("none", "probabilistic", "flashield", "s3fifo")


def fail(msg):
    print(f"flash smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 2:
        fail(f"expected 1 argument, got {len(argv) - 1} (see module docstring)")
    bench = json.load(open(argv[1]))
    if bench.get("bench") != "flash":
        fail(f"not a flash bench file: {bench.get('bench')!r}")

    rows = {}
    for row in bench["rows"]:
        rows[(row["dataset"], row["backend"], row["admission"])] = row

    for dataset in DATASETS:
        for backend in BACKENDS:
            for admission in ADMISSIONS:
                if (dataset, backend, admission) not in rows:
                    fail(f"missing row: {dataset}/{backend}/{admission}")

    for key, row in rows.items():
        name = "/".join(key)
        log_dev = row["log_device_bytes"]
        log_adm = row["log_admitted_bytes"]
        gc = row["gc_rewrite_bytes"]
        set_dev = row["set_device_bytes"]
        if log_dev != log_adm + gc:
            fail(
                f"{name}: log conservation violated: device={log_dev} "
                f"admitted={log_adm} gc_rewrite={gc}"
            )
        if set_dev != row["set_page_writes"] * row["set_bytes"]:
            fail(
                f"{name}: set conservation violated: device={set_dev} "
                f"page_writes={row['set_page_writes']} set_bytes={row['set_bytes']}"
            )
        if row["device_bytes_written"] != log_dev + set_dev:
            fail(f"{name}: combined device bytes != log + set components")
        if row["admitted_bytes"] != log_adm + row["set_admitted_bytes"]:
            fail(f"{name}: combined admitted bytes != log + set components")

        wa = row["write_amplification"]
        admitted = row["admitted_bytes"]
        if admitted > 0:
            expect = row["device_bytes_written"] / admitted
            if abs(wa - expect) > 1e-9 * max(1.0, expect):
                fail(f"{name}: WA {wa} != device/admitted {expect}")
            if wa < 1.0:
                fail(f"{name}: WA {wa} < 1 (device lost bytes?)")
        if key[1] == "log-fifo":
            if gc != 0:
                fail(f"{name}: pure FIFO backend rewrote {gc} bytes")
            if admitted > 0 and wa != 1.0:
                fail(f"{name}: pure FIFO backend has WA {wa} != 1.0")

    for dataset in DATASETS:
        for backend in BACKENDS:
            none_row = rows[(dataset, backend, "none")]
            s3_row = rows[(dataset, backend, "s3fifo")]
            if none_row["device_bytes_written"] <= s3_row["device_bytes_written"]:
                fail(
                    f"{dataset}/{backend}: no-admission wrote "
                    f"{none_row['device_bytes_written']} <= s3fifo filter "
                    f"{s3_row['device_bytes_written']} (Fig. 9 shape inverted)"
                )
            if s3_row["miss_ratio"] > none_row["miss_ratio"] + 1e-12:
                fail(
                    f"{dataset}/{backend}: s3fifo filter miss ratio "
                    f"{s3_row['miss_ratio']} above no-admission "
                    f"{none_row['miss_ratio']} (Fig. 9 shape inverted)"
                )

    print(
        f"flash smoke OK: {len(rows)} rows, conservation exact, "
        "WA consistent, Fig. 9 shape holds"
    )


if __name__ == "__main__":
    main(sys.argv)
