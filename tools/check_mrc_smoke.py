#!/usr/bin/env python3
"""CI smoke check for the one-pass MRC engine.

Usage:
  check_mrc_smoke.py ONEPASS_BENCH.json BRUTE_BENCH.json [eps]

Compares two BENCH_fig06_percentiles.json files from the same bench binary
run with --mrc=onepass (the default) and --mrc=brute, and asserts:
  1. both runs produced the same set of figure rows,
  2. every numeric field agrees within eps (default 0: the one-pass engine
     is exact for the FIFO family and the brute path is shared for the rest,
     so the rows must be bit-identical),
  3. the onepass run actually ran in onepass mode (summary.mrc).

Exits non-zero with a diagnostic on any violation.
"""

import json
import sys


def fail(msg):
    print(f"mrc smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items() if not isinstance(v, float)))


def main(argv):
    if len(argv) not in (3, 4):
        fail(f"expected 2-3 arguments, got {len(argv) - 1} (see module docstring)")
    onepass = json.load(open(argv[1]))
    brute = json.load(open(argv[2]))
    eps = float(argv[3]) if len(argv) == 4 else 0.0

    if onepass["summary"].get("mrc") != "onepass":
        fail(f"first file is not an onepass run: {onepass['summary']}")
    if brute["summary"].get("mrc") != "brute":
        fail(f"second file is not a brute run: {brute['summary']}")

    if len(onepass["rows"]) != len(brute["rows"]):
        fail(
            f"row counts differ: {len(onepass['rows'])} onepass "
            f"vs {len(brute['rows'])} brute"
        )

    brute_rows = {row_key(r): r for r in brute["rows"]}
    compared = 0
    for row in onepass["rows"]:
        key = row_key(row)
        if key not in brute_rows:
            fail(f"onepass row has no brute counterpart: {row}")
        other = brute_rows[key]
        for field, value in row.items():
            if not isinstance(value, float):
                continue
            delta = abs(value - other[field])
            if delta > eps:
                fail(
                    f"'{field}' differs by {delta} (> eps {eps}) for row {key}:\n"
                    f"  onepass: {row}\n  brute:   {other}"
                )
            compared += 1

    op_speed = onepass["summary"].get("requests_per_sec", 0)
    br_speed = brute["summary"].get("requests_per_sec", 0)
    ratio = op_speed / br_speed if br_speed else float("nan")
    print(
        f"mrc smoke OK: {len(onepass['rows'])} rows, {compared} numeric fields "
        f"within eps={eps}; equivalent-work throughput onepass/brute = {ratio:.1f}x"
    )


if __name__ == "__main__":
    main(sys.argv)
