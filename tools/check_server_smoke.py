#!/usr/bin/env python3
"""CI smoke check for the cache server front end.

Usage:
  check_server_smoke.py [SERVER_BIN] [LOADGEN_BIN]

Runs the whole check once per transport backend (epoll, then io_uring).
For each leg it starts s3fifo_server on an ephemeral port with
--transport pinned, then:
  1. speaks the protocol directly over a socket: set/get round-trips the
     stored bytes, delete removes it, stats reports coherent counters;
  2. runs a short closed-loop s3fifo_loadgen burst (same transport) and
     checks every requested op completed with a plausible hit ratio;
  3. re-reads stats and checks the server counted at least the loadgen
     ops AND that the data-plane counters name the pinned transport;
  4. sends SIGINT and verifies a clean exit with a shutdown stats line.

The io_uring leg SKIPs — it does not fail — when the kernel or a seccomp
sandbox denies io_uring_setup (EPERM/ENOSYS/EACCES): the server refuses to
start, this tool logs the fallback explicitly, and the epoll leg remains
the binding check. Any other io_uring failure is a real failure.

Exits non-zero with a diagnostic on any violation.
"""

import re
import signal
import socket
import subprocess
import sys
import time

TRANSPORTS = ("epoll", "uring")

# Denial errnos that mean "this environment forbids io_uring", not "the
# transport is broken": the uring leg skips on these and only these.
URING_DENIED = ("EPERM", "ENOSYS", "EACCES")


def fail(msg):
    print(f"server smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def recv_until(sock, suffix, limit=1 << 20):
    buf = b""
    while not buf.endswith(suffix):
        chunk = sock.recv(65536)
        if not chunk:
            fail(f"connection closed waiting for {suffix!r}; got {buf!r}")
        buf += chunk
        if len(buf) > limit:
            fail(f"response exceeded {limit} bytes waiting for {suffix!r}")
    return buf


def read_stats(port):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
        s.sendall(b"stats\r\n")
        raw = recv_until(s, b"END\r\n").decode()
    stats = {}
    text = {}
    for line in raw.splitlines():
        parts = line.split()
        if len(parts) == 3 and parts[0] == "STAT":
            text[parts[1]] = parts[2]
            if parts[2].isdigit():
                stats[parts[1]] = int(parts[2])
    if not stats:
        fail(f"stats response had no STAT lines: {raw!r}")
    return stats, text


def check_protocol(port):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
        # Pipelined set + get: the stored bytes must round-trip.
        s.sendall(b"set smoke 0 0 5\r\nhello\r\nget smoke\r\n")
        resp = recv_until(s, b"END\r\n")
        if not resp.startswith(b"STORED\r\n"):
            fail(f"set did not report STORED: {resp!r}")
        if b"VALUE smoke 0 5\r\nhello\r\n" not in resp:
            fail(f"get did not return the stored value: {resp!r}")
        # Delete, then the next get must miss (END with no VALUE).
        s.sendall(b"delete smoke\r\nget smoke\r\n")
        resp = recv_until(s, b"END\r\n")
        if not resp.startswith(b"DELETED\r\n"):
            fail(f"delete did not report DELETED: {resp!r}")
        if b"VALUE smoke" in resp:
            fail(f"get after delete still returned a value: {resp!r}")
        # Malformed command: an error line, connection stays usable.
        s.sendall(b"bogus\r\nversion\r\n")
        resp = recv_until(s, b"\r\n")
        while b"VERSION" not in resp:
            resp += recv_until(s, b"\r\n")
        if not resp.startswith(b"ERROR"):
            fail(f"unknown command did not yield ERROR: {resp!r}")
        s.sendall(b"quit\r\n")
    print("server smoke: protocol round-trip OK")


def run_leg(server_bin, loadgen_bin, transport):
    """Returns True if the leg ran, False if it was skipped."""
    server = subprocess.Popen(
        [server_bin, "--port", "0", "--workers", "2", "--capacity", "20000",
         "--transport", transport],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = server.stdout.readline()
        if not line:
            # Startup failure: decide skip vs fail from the diagnostic.
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                fail(f"transport={transport} produced no output and hung")
            err = server.stderr.read().strip()
            if transport == "uring" and any(e in err for e in URING_DENIED):
                print(f"server smoke: transport=uring SKIPPED "
                      f"(io_uring denied by this environment: {err!r}); "
                      f"epoll leg remains the binding check")
                return False
            fail(f"transport={transport} failed to start: {err!r}")
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if not m:
            fail(f"server did not announce a port: {line!r}")
        port = int(m.group(1))
        if f"transport={transport}" not in line:
            fail(f"server did not announce transport={transport}: {line!r}")

        check_protocol(port)

        ops = 50000
        load = subprocess.run(
            [loadgen_bin, "--port", str(port), "--connections", "4",
             "--depth", "16", "--ops", str(ops), "--objects", "100000",
             "--transport", transport],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if load.returncode != 0:
            fail(f"loadgen exited {load.returncode}: {load.stderr}")
        m = re.search(r"mode=closed .*ops=(\d+) .*hit_ratio=([0-9.]+)",
                      load.stdout)
        if not m:
            fail(f"loadgen output unparseable: {load.stdout!r}")
        done, hit_ratio = int(m.group(1)), float(m.group(2))
        if done != ops:
            fail(f"loadgen completed {done} of {ops} ops")
        if not 0.0 < hit_ratio < 1.0:
            fail(f"implausible hit ratio {hit_ratio}")
        if f"transport={transport}" not in load.stdout:
            fail(f"loadgen did not report transport={transport}: "
                 f"{load.stdout!r}")
        print(f"server smoke: loadgen OK ({load.stdout.splitlines()[0]})")

        stats, text = read_stats(port)
        # The default Zipf trace is get-dominated; a generous floor guards
        # against the server under-counting without pinning the exact mix.
        if stats.get("cmd_get", 0) < ops // 2:
            fail(f"server counted only {stats.get('cmd_get')} gets for "
                 f"{ops} ops")
        if stats.get("get_hits", 0) + stats.get("get_misses", 0) < ops // 2:
            fail(f"hit+miss counters incoherent: {stats}")
        if stats.get("batches", 0) == 0:
            fail("server never batched pipelined gets")
        if text.get("transport") != transport:
            fail(f"stats reported transport={text.get('transport')!r}, "
                 f"expected {transport}")
        if stats.get("transport_syscalls", 0) == 0:
            fail("data-plane counters missing: transport_syscalls == 0")
        print(
            "server smoke: stats OK "
            f"(cmd_get={stats['cmd_get']} batches={stats['batches']} "
            f"transport_syscalls={stats['transport_syscalls']})"
        )

        server.send_signal(signal.SIGINT)
        out, _ = server.communicate(timeout=10)
        if server.returncode != 0:
            fail(f"server exited {server.returncode} on SIGINT")
        if "shutdown:" not in out:
            fail(f"no shutdown stats line: {out!r}")
        print(f"server smoke: transport={transport} OK, clean shutdown "
              f"({out.strip().splitlines()[-1]})")
        return True
    finally:
        if server.poll() is None:
            server.kill()


def main(argv):
    server_bin = argv[1] if len(argv) > 1 else "./build/src/s3fifo_server"
    loadgen_bin = argv[2] if len(argv) > 2 else "./build/src/s3fifo_loadgen"
    ran = []
    for transport in TRANSPORTS:
        print(f"server smoke: --- transport={transport} ---")
        if run_leg(server_bin, loadgen_bin, transport):
            ran.append(transport)
    if "epoll" not in ran:
        fail("epoll leg did not run")  # unreachable: epoll never skips
    print(f"server smoke OK: transports covered = {', '.join(ran)}")


if __name__ == "__main__":
    main(sys.argv)
