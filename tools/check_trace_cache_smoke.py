#!/usr/bin/env python3
"""CI smoke check for the persistent trace cache.

Usage:
  check_trace_cache_smoke.py COLD_BENCH.json WARM_BENCH.json \
      COLD_CACHE.json WARM_CACHE.json

Asserts, after running the same bench binary twice against one cache dir:
  1. the cold run populated the cache (misses > 0),
  2. the warm run was served entirely from it (hits > 0, misses == 0),
  3. the figure rows (miss ratios etc.) are bit-identical cold vs warm.

Exits non-zero with a diagnostic on any violation.
"""

import json
import sys


def fail(msg):
    print(f"trace-cache smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 5:
        fail(f"expected 4 arguments, got {len(argv) - 1} (see module docstring)")
    cold_bench, warm_bench, cold_cache, warm_cache = (
        json.load(open(p)) for p in argv[1:5]
    )

    cold_summary = cold_cache["summary"]
    if cold_summary.get("misses", 0) == 0:
        fail(f"cold run recorded no cache misses: {cold_summary}")

    warm_summary = warm_cache["summary"]
    if warm_summary.get("misses", 1) != 0:
        fail(f"warm run regenerated traces (misses != 0): {warm_summary}")
    if warm_summary.get("hits", 0) == 0:
        fail(f"warm run recorded no cache hits: {warm_summary}")

    if cold_bench["rows"] != warm_bench["rows"]:
        for c, w in zip(cold_bench["rows"], warm_bench["rows"]):
            if c != w:
                fail(f"figure rows differ cold vs warm:\n  cold: {c}\n  warm: {w}")
        fail(
            f"figure row counts differ: {len(cold_bench['rows'])} cold "
            f"vs {len(warm_bench['rows'])} warm"
        )

    speedup = warm_summary.get("warm_speedup", 0)
    print(
        f"trace-cache smoke OK: {warm_summary['hits']} warm hits, 0 misses, "
        f"{len(warm_bench['rows'])} identical figure rows, "
        f"trace-resolution speedup {speedup:.1f}x"
    )


if __name__ == "__main__":
    main(sys.argv)
