#!/usr/bin/env python3
"""Per-directory line-coverage summary from gcov JSON output.

Works with nothing but gcc's bundled gcov (no gcovr/lcov). Usage:

    cmake --preset coverage && cmake --build --preset coverage -j
    ctest --preset tier1-coverage
    python3 tools/coverage_summary.py build-cov [--filter src/]

For every .gcda produced by the test run, gcov --json-format is invoked and
executable/executed line counts are summed per repository directory.
"""

import argparse
import collections
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    # Absolute paths: gcov runs from a scratch directory (for its outputs),
    # so relative .gcda paths would not resolve.
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def run_gcov(gcda_paths, out_dir):
    """Runs gcov in JSON mode; returns paths of the .gcov.json.gz outputs."""
    subprocess.run(
        ["gcov", "--json-format", "--object-directory", os.path.dirname(gcda_paths[0])]
        + gcda_paths,
        cwd=out_dir,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        check=False,
    )
    return [
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.endswith(".gcov.json.gz")
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", help="coverage build tree (e.g. build-cov)")
    parser.add_argument(
        "--filter",
        default="src/",
        help="only count files whose repo-relative path starts with this "
        "(default: src/; use '' for everything)",
    )
    args = parser.parse_args()

    repo = os.path.dirname(os.path.abspath(os.path.dirname(__file__)))
    gcda_by_dir = collections.defaultdict(list)
    for path in find_gcda(args.build_dir):
        gcda_by_dir[os.path.dirname(path)].append(path)
    if not gcda_by_dir:
        sys.exit(f"no .gcda files under {args.build_dir}; run the tests first")

    # (executable_lines, executed_lines) per source file; files seen in
    # several objects keep per-line maxima (a line is covered if any test
    # binary executed it).
    line_hits = collections.defaultdict(dict)
    with tempfile.TemporaryDirectory() as tmp:
        for obj_dir, gcdas in sorted(gcda_by_dir.items()):
            for json_path in run_gcov(gcdas, tmp):
                with gzip.open(json_path, "rt") as f:
                    data = json.load(f)
                for file_entry in data.get("files", []):
                    source = file_entry["file"]
                    abs_source = os.path.normpath(
                        source if os.path.isabs(source) else os.path.join(repo, source)
                    )
                    if not abs_source.startswith(repo + os.sep):
                        continue
                    rel = os.path.relpath(abs_source, repo)
                    if args.filter and not rel.startswith(args.filter):
                        continue
                    hits = line_hits[rel]
                    for line in file_entry.get("lines", []):
                        number = line["line_number"]
                        hits[number] = max(hits.get(number, 0), line["count"])
                os.unlink(json_path)

    per_dir = collections.defaultdict(lambda: [0, 0])
    for rel, hits in line_hits.items():
        bucket = per_dir[os.path.dirname(rel)]
        bucket[0] += len(hits)
        bucket[1] += sum(1 for count in hits.values() if count > 0)

    total_lines = total_hit = 0
    print(f"{'directory':32} {'lines':>8} {'covered':>8} {'pct':>7}")
    for directory in sorted(per_dir):
        lines, hit = per_dir[directory]
        total_lines += lines
        total_hit += hit
        print(f"{directory:32} {lines:8} {hit:8} {100.0 * hit / lines:6.1f}%")
    if total_lines:
        print(f"{'TOTAL':32} {total_lines:8} {total_hit:8} "
              f"{100.0 * total_hit / total_lines:6.1f}%")


if __name__ == "__main__":
    main()
